#include "mesh/geometry.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "dsp/require.h"
#include "dsp/types.h"

namespace ctc::mesh {

double distance(const Vec2& a, const Vec2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

GeometryKind parse_geometry(std::string_view name) {
  if (name == "grid") return GeometryKind::grid;
  if (name == "ring") return GeometryKind::ring;
  throw std::invalid_argument("unknown mesh geometry '" + std::string(name) +
                              "' (expected \"grid\" or \"ring\")");
}

const char* geometry_name(GeometryKind kind) {
  return kind == GeometryKind::grid ? "grid" : "ring";
}

std::vector<Vec2> grid_layout(std::size_t count, double extent_m) {
  CTC_REQUIRE(count >= 1);
  CTC_REQUIRE(extent_m > 0.0);
  const std::size_t side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  std::vector<Vec2> positions;
  positions.reserve(count);
  const double half = extent_m / 2.0;
  for (std::size_t row = 0; row < side && positions.size() < count; ++row) {
    for (std::size_t col = 0; col < side && positions.size() < count; ++col) {
      Vec2 p;
      if (side == 1) {
        p = Vec2{0.0, 0.0};
      } else {
        const double step = extent_m / static_cast<double>(side - 1);
        p.x = -half + static_cast<double>(col) * step;
        p.y = -half + static_cast<double>(row) * step;
      }
      positions.push_back(p);
    }
  }
  return positions;
}

std::vector<Vec2> ring_layout(std::size_t count, double radius_m) {
  CTC_REQUIRE(count >= 1);
  CTC_REQUIRE(radius_m > 0.0);
  std::vector<Vec2> positions;
  positions.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const double angle =
        kTwoPi * static_cast<double>(k) / static_cast<double>(count);
    positions.push_back(
        Vec2{radius_m * std::cos(angle), radius_m * std::sin(angle)});
  }
  return positions;
}

std::vector<Vec2> make_layout(GeometryKind kind, std::size_t count,
                              double extent_m) {
  return kind == GeometryKind::grid ? grid_layout(count, extent_m)
                                    : ring_layout(count, extent_m);
}

}  // namespace ctc::mesh
