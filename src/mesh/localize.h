// Least-squares RSSI localization of the WiFi attacker (the "seek" half of
// hide-and-seek): each sensor inverts the log-distance model
// (channel::log_distance_inverse_m) into a range estimate, and a damped
// Gauss-Newton solve finds the position minimizing the sum of squared range
// residuals  r_i(p) = ||p - s_i|| - d_i.  Initialization is the RSSI-
// weighted centroid (linear received power), which lands inside the convex
// hull of the loudest sensors — close enough that the fixed iteration
// budget converges for every field this repo ships.
//
// Deterministic by construction: no RNG, no clock, fixed iteration order.
#pragma once

#include <cstddef>
#include <span>

#include "channel/pathloss.h"
#include "mesh/geometry.h"

namespace ctc::mesh {

/// One sensor's measurement: where it sits and what power it saw.
struct RssiSample {
  Vec2 position;
  double rssi_dbm = 0.0;
};

struct LocalizeConfig {
  /// Log-distance model the ranges are inverted through. Must match the
  /// forward model that produced the measurements (SensorField shares one
  /// PathLossModel between propagation and localization).
  channel::PathLossModel path_loss;
  std::size_t max_iterations = 25;
  /// Stop once the Gauss-Newton step norm falls below this (m).
  double tolerance_m = 1e-9;
  /// Ranges and sensor-to-estimate distances are clamped to this floor so
  /// a sensor sitting on top of the estimate cannot divide by zero.
  double min_distance_m = 1e-3;
};

struct LocalizationResult {
  Vec2 position;
  bool converged = false;     ///< step norm fell below tolerance in budget
  std::size_t iterations = 0; ///< Gauss-Newton steps actually taken
  double residual_rms_m = 0.0; ///< RMS range residual at the solution
};

/// Solves for the emitter position from >= 3 samples (throws below that —
/// two ranges leave a mirror ambiguity in the plane).
LocalizationResult localize_rssi(std::span<const RssiSample> samples,
                                 const LocalizeConfig& config);

}  // namespace ctc::mesh
