// Decision fusion across a sensor field: combines per-sensor cumulant
// verdicts (defense::Detector on each sensor's received frame) into one
// field-level attack decision. Three rules, from cheapest to most informed:
//
//   majority     hard-verdict vote over usable sensors; a tie alarms
//                (detection-biased — a waveform-emulation miss costs more
//                than a false alarm, and the threshold stage already
//                controls the per-sensor false-alarm rate);
//   rssi_weighted  received-power-weighted mean of the per-sensor DE^2
//                soft scores against the detector threshold — sensors with
//                more signal estimate the cumulants better and get more say;
//   bayesian     sum of per-sensor Gaussian log-likelihood ratios of DE^2
//                under H1 (emulated) vs H0 (authentic), decided at LLR 0
//                (equal priors).
//
// All three are pure functions of their inputs — no RNG, no clock — so a
// fused campaign report inherits the engine's bit-stability for free.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace ctc::mesh {

/// One sensor's contribution to a fused decision.
struct SensorVote {
  bool usable = false;    ///< the sensor's receiver produced chip samples
  bool is_attack = false; ///< per-sensor hard verdict (DE^2 >= threshold)
  double de2 = 0.0;       ///< per-sensor soft score (DE^2)
  double weight = 0.0;    ///< linear received power (mW), >= 0
};

/// Per-sensor class-conditional Gaussian models of DE^2 for the Bayesian
/// rule. Defaults approximate the Table IV training statistics at mid SNR.
struct GaussianPair {
  double mu_h0 = 0.05;   ///< authentic DE^2 mean
  double var_h0 = 0.01;  ///< authentic DE^2 variance
  double mu_h1 = 0.5;    ///< emulated DE^2 mean
  double var_h1 = 0.05;  ///< emulated DE^2 variance
};

/// Variances below this floor are clamped before the Gaussian log-pdf so a
/// degenerate (zero-variance) training model stays finite — and the clamped
/// result stays hand-computable in tests.
inline constexpr double kBayesVarianceFloor = 1e-12;

enum class FusionRule { majority, rssi_weighted, bayesian };
const char* fusion_rule_name(FusionRule rule);

struct FusionResult {
  /// Rule-specific statistic: attack fraction (majority), weighted mean
  /// DE^2 (rssi_weighted), or summed LLR (bayesian).
  double score = 0.0;
  bool is_attack = false;
  std::size_t used = 0;  ///< usable sensors that entered the decision
};

/// Majority vote over usable sensors. Ties alarm (2*attacks >= used). With
/// zero usable sensors the field abstains: score 0, no attack.
FusionResult fuse_majority(std::span<const SensorVote> votes);

/// Received-power-weighted mean DE^2 >= threshold. Degenerate weights (all
/// usable sensors report zero power) fall back to the unweighted mean, so
/// the rule degrades to soft averaging instead of dividing by zero.
FusionResult fuse_rssi_weighted(std::span<const SensorVote> votes,
                                double threshold);

/// Summed per-sensor Gaussian LLR, decided at 0. `models` holds either one
/// entry (shared by every sensor) or exactly votes.size() entries.
FusionResult fuse_bayesian(std::span<const SensorVote> votes,
                           std::span<const GaussianPair> models);

/// The log-likelihood ratio one sensor contributes:
/// log N(de2; mu_h1, var_h1) - log N(de2; mu_h0, var_h0), with both
/// variances clamped to kBayesVarianceFloor. Exposed for the unit oracles.
double gaussian_llr(double de2, const GaussianPair& model);

}  // namespace ctc::mesh
