#include "mesh/fusion.h"

#include <algorithm>
#include <cmath>

#include "dsp/require.h"
#include "dsp/types.h"

namespace ctc::mesh {

const char* fusion_rule_name(FusionRule rule) {
  switch (rule) {
    case FusionRule::majority:
      return "majority";
    case FusionRule::rssi_weighted:
      return "rssi_weighted";
    case FusionRule::bayesian:
      return "bayesian";
  }
  return "unknown";
}

FusionResult fuse_majority(std::span<const SensorVote> votes) {
  FusionResult result;
  std::size_t attacks = 0;
  for (const SensorVote& vote : votes) {
    if (!vote.usable) continue;
    ++result.used;
    attacks += vote.is_attack ? 1 : 0;
  }
  if (result.used == 0) return result;
  result.score =
      static_cast<double>(attacks) / static_cast<double>(result.used);
  result.is_attack = 2 * attacks >= result.used;
  return result;
}

FusionResult fuse_rssi_weighted(std::span<const SensorVote> votes,
                                double threshold) {
  FusionResult result;
  double weight_sum = 0.0;
  double weighted_de2 = 0.0;
  double de2_sum = 0.0;
  for (const SensorVote& vote : votes) {
    if (!vote.usable) continue;
    CTC_REQUIRE(vote.weight >= 0.0);
    ++result.used;
    weight_sum += vote.weight;
    weighted_de2 += vote.weight * vote.de2;
    de2_sum += vote.de2;
  }
  if (result.used == 0) return result;
  result.score = weight_sum > 0.0
                     ? weighted_de2 / weight_sum
                     : de2_sum / static_cast<double>(result.used);
  result.is_attack = result.score >= threshold;
  return result;
}

double gaussian_llr(double de2, const GaussianPair& model) {
  const double var_h0 = std::max(model.var_h0, kBayesVarianceFloor);
  const double var_h1 = std::max(model.var_h1, kBayesVarianceFloor);
  auto log_pdf = [&](double mu, double var) {
    const double residual = de2 - mu;
    return -0.5 * std::log(kTwoPi * var) - residual * residual / (2.0 * var);
  };
  return log_pdf(model.mu_h1, var_h1) - log_pdf(model.mu_h0, var_h0);
}

FusionResult fuse_bayesian(std::span<const SensorVote> votes,
                           std::span<const GaussianPair> models) {
  CTC_REQUIRE(models.size() == 1 || models.size() == votes.size());
  FusionResult result;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    const SensorVote& vote = votes[i];
    if (!vote.usable) continue;
    ++result.used;
    const GaussianPair& model = models.size() == 1 ? models[0] : models[i];
    result.score += gaussian_llr(vote.de2, model);
  }
  if (result.used == 0) return result;
  result.is_attack = result.score >= 0.0;
  return result;
}

}  // namespace ctc::mesh
