// Multi-sensor detection mesh: M spatially-placed sensors all watching the
// same emitted waveform, each through its OWN channel (per-sensor log-
// distance path loss, fading, CFO and noise draws), each running the
// cumulant detector — then fused (mesh/fusion.h) and localized
// (mesh/localize.h) per trial.
//
// One engine trial = one frame through all M sensors. The trial's engine-
// provided RNG contributes exactly one draw (the per-trial sensor seed);
// sensor s then draws from dsp::Rng::for_stream(sensor_seed, s), so the
// whole fan-out is a pure function of (seed, run_index, trial_index,
// sensor_id) — bit-identical at any thread count, batch partition, or
// shard boundary (scheme documented in src/dsp/rng.h).
//
// The per-sensor channel sweep reuses the SoA batch path: M sensors are a
// natural batch, one row per sensor, pushed through
// channel::propagate_batch_multi in a single stage-major sweep. The serial
// per-sensor path is kept behind `batched_channel = false` as the bit-
// identical reference for the equivalence test.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "attack/emulator.h"
#include "channel/environment.h"
#include "channel/pathloss.h"
#include "defense/detector.h"
#include "dsp/rng.h"
#include "dsp/types.h"
#include "mesh/fusion.h"
#include "mesh/geometry.h"
#include "mesh/localize.h"
#include "sim/defense_run.h"
#include "sim/engine.h"
#include "sim/link.h"
#include "zigbee/frame.h"
#include "zigbee/receiver.h"

namespace ctc::mesh {

struct MeshConfig {
  std::size_t sensors = 9;  ///< field size M (>= 3: localization minimum)
  GeometryKind geometry = GeometryKind::grid;
  /// Grid span (grid) or radius (ring), meters.
  double extent_m = 8.0;
  /// True emitter position. Off-center by default so sensor distances —
  /// and therefore SNRs — differ, which is the whole point of a mesh.
  Vec2 attacker{1.9, 1.1};

  /// What the emitter transmits: the WiFi emulation attack or an authentic
  /// ZigBee transmitter (for false-alarm measurement).
  sim::LinkKind kind = sim::LinkKind::emulated;
  attack::EmulatorConfig emulator;  ///< used when kind == emulated

  /// Shared propagation model: per-sensor SNR and RSSI both come from this
  /// log-distance model at the sensor's distance, and localization inverts
  /// the same model.
  channel::PathLossModel path_loss;
  /// Link-budget shift applied on top of path loss (sweeps SNR without
  /// moving the field).
  double snr_offset_db = 0.0;
  /// Log-normal shadowing (dB std dev) on each sensor's MEASURED RSSI —
  /// the localization noise knob. The paper's channel is SNR-parameterized
  /// (unit signal power, scaled noise), so RSSI is synthesized from the
  /// model rather than measured off the waveform.
  double shadow_sigma_db = 1.0;
  /// Per-sensor block Rician fading (nullopt = none).
  std::optional<double> rician_k_factor;
  double cfo_hz = 0.0;
  bool random_phase = false;
  double sample_rate_hz = 4.0e6;

  zigbee::ReceiverProfile profile = zigbee::ReceiverProfile::usrp();
  defense::DetectorConfig detector;
  /// Receiver tap feeding the detector (see sim::DefenseTap).
  sim::DefenseTap tap = sim::DefenseTap::discriminator;
  /// Class-conditional DE^2 models for the Bayesian rule (shared by all
  /// sensors).
  GaussianPair bayes;

  /// SoA multi-environment channel sweep vs the serial per-sensor
  /// reference; bit-identical either way.
  bool batched_channel = true;
};

/// One sensor's view of one trial.
struct SensorObservation {
  double snr_db = 0.0;            ///< effective (path loss + offset + gain)
  double measured_rssi_dbm = 0.0; ///< model RSSI + shadowing draw
  bool usable = false;            ///< receiver produced chip samples
  bool is_attack = false;         ///< per-sensor detector verdict
  double de2 = 0.0;
  double c40 = 0.0;
  double c42 = 0.0;
};

/// One trial's full field view: per-sensor features, the three fused
/// verdicts, and the localization fix.
struct MeshObservation {
  std::vector<SensorObservation> sensors;
  FusionResult majority;
  FusionResult weighted;
  FusionResult bayesian;
  LocalizationResult localization;
  double position_error_m = 0.0;  ///< |estimate - true attacker position|
};

class SensorField {
 public:
  explicit SensorField(MeshConfig config);

  const MeshConfig& config() const { return config_; }
  const std::vector<Vec2>& positions() const { return positions_; }
  const std::vector<double>& distances() const { return distances_; }

  /// One Monte Carlo trial: `frame` through every sensor's channel,
  /// detector and the fusion/localization stages. `rng` is the engine-
  /// provided trial stream; exactly one draw (the sensor seed) is taken
  /// from it.
  MeshObservation observe_frame(const zigbee::MacFrame& frame,
                                dsp::Rng& rng) const;

  /// Pre-fills the waveform cache (see sim::Link::prime).
  void prime(std::span<const zigbee::MacFrame> frames) const;

 private:
  MeshConfig config_;
  std::vector<Vec2> positions_;
  std::vector<double> distances_;
  std::vector<double> model_rssi_dbm_;
  std::vector<channel::Environment> environments_;
  sim::Link link_;  ///< waveform synthesis only; its channel is unused
  zigbee::Receiver receiver_;
  defense::Detector detector_;
};

/// Engine aggregator over MeshObservations: detection counters per fusion
/// rule, per-sensor usability, and the position-error series (trial order,
/// so RMSE/CEP reductions are bit-stable).
struct MeshStats {
  std::size_t trials = 0;
  std::size_t sensors_total = 0;
  std::size_t sensors_usable = 0;
  std::size_t sensor_attacks = 0;  ///< per-sensor verdicts, summed
  std::size_t majority_attacks = 0;
  std::size_t weighted_attacks = 0;
  std::size_t bayesian_attacks = 0;
  std::size_t localization_converged = 0;
  double de2_sum = 0.0;  ///< over usable sensor observations
  rvec position_errors;  ///< one entry per trial

  void add(const MeshObservation& observation);

  double majority_rate() const;
  double weighted_rate() const;
  double bayesian_rate() const;
  /// Per-sensor attack rate over usable observations — the single-sensor
  /// baseline fusion is measured against.
  double single_sensor_rate() const;
  double usable_fraction() const;
  double mean_de2() const;
  /// Root-mean-square position error (m).
  double rmse_m() const;
  /// Circular error probable: the median position error (m).
  double cep50_m() const;
};

/// Runs `count` field trials (frames cycled from `frames`) on the engine,
/// one MeshObservation per trial, folded in trial order.
MeshStats run_mesh_trials(const SensorField& field,
                          std::span<const zigbee::MacFrame> frames,
                          std::size_t count, sim::TrialEngine& engine);

}  // namespace ctc::mesh
