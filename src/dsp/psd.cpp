#include "dsp/psd.h"

#include <cmath>

#include "dsp/fft.h"
#include "dsp/kernels/kernels.h"
#include "dsp/require.h"

namespace ctc::dsp {

PsdResult welch_psd(std::span<const cplx> signal, PsdConfig config) {
  CTC_REQUIRE(is_power_of_two(config.segment_size) && config.segment_size >= 2);
  CTC_REQUIRE(config.overlap >= 0.0 && config.overlap < 1.0);
  CTC_REQUIRE(config.sample_rate_hz > 0.0);
  CTC_REQUIRE_MSG(signal.size() >= config.segment_size,
                  "signal shorter than one Welch segment");

  const std::size_t n = config.segment_size;
  const std::size_t hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) * (1.0 - config.overlap)));
  const rvec window = make_window(config.window, n);
  double window_power = 0.0;
  for (double w : window) window_power += w * w;

  const FftPlan plan(n);
  rvec accumulated(n, 0.0);
  std::size_t segments = 0;
  cvec buffer(n);
  const kernels::KernelTable& kt = kernels::active();
  for (std::size_t start = 0; start + n <= signal.size(); start += hop) {
    kt.apply_window(signal.data() + start, window.data(), n, buffer.data());
    const cvec spectrum = plan.forward(buffer);
    kt.accumulate_mag2(accumulated.data(), spectrum.data(), n);
    ++segments;
  }
  // Normalize: per-segment |X|^2 / (N * sum w^2) makes sum(power) = E|x|^2.
  const double scale = 1.0 / (static_cast<double>(segments) *
                              static_cast<double>(n) * window_power);

  PsdResult result;
  result.segments_used = segments;
  result.frequency_hz.resize(n);
  result.power.resize(n);
  const double bin_width = config.sample_rate_hz / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // fftshift: output index i corresponds to FFT bin (i + n/2) mod n.
    const std::size_t bin = (i + n / 2) % n;
    const double frequency =
        (static_cast<double>(i) - static_cast<double>(n) / 2.0) * bin_width;
    result.frequency_hz[i] = frequency;
    result.power[i] = accumulated[bin] * scale;
  }
  return result;
}

double band_power_fraction(const PsdResult& psd, double low_hz, double high_hz) {
  CTC_REQUIRE(low_hz <= high_hz);
  CTC_REQUIRE(!psd.power.empty());
  double in_band = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < psd.power.size(); ++i) {
    total += psd.power[i];
    if (psd.frequency_hz[i] >= low_hz && psd.frequency_hz[i] <= high_hz) {
      in_band += psd.power[i];
    }
  }
  CTC_REQUIRE(total > 0.0);
  return in_band / total;
}

}  // namespace ctc::dsp
