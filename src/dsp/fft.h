// Fast Fourier Transform.
//
// The attack pipeline (Sec. V of the paper) is built around the 64-point
// FFT/IFFT of the 802.11g OFDM modulator. FftPlan implements an iterative
// radix-2 Cooley–Tukey transform for any power-of-two size with precomputed
// twiddles; dft()/idft() are O(n^2) reference implementations used by tests.
//
// Conventions (match Eq. (1) of the paper and standard OFDM usage):
//   forward:  X[k] = sum_n x[n] * exp(-j 2 pi k n / N)        (no scaling)
//   inverse:  x[n] = (1/N) sum_k X[k] * exp(+j 2 pi k n / N)
// so inverse(forward(x)) == x, and Parseval reads
//   sum_n |x[n]|^2 == (1/N) sum_k |X[k]|^2.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace ctc::dsp {

/// Radix-2 FFT plan for a fixed power-of-two size.
class FftPlan {
 public:
  /// Requires `size` to be a power of two, >= 2.
  explicit FftPlan(std::size_t size);

  std::size_t size() const { return size_; }

  /// Out-of-place forward transform. `input.size()` must equal size().
  cvec forward(std::span<const cplx> input) const;

  /// Out-of-place inverse transform (includes the 1/N scaling).
  cvec inverse(std::span<const cplx> input) const;

  /// In-place forward transform over a caller-owned buffer of exactly
  /// size() samples — no allocation. Same convention as forward().
  void forward_inplace(std::span<cplx> data) const;

  /// In-place inverse transform (includes the 1/N scaling) — no allocation.
  void inverse_inplace(std::span<cplx> data) const;

  /// Out-of-place forward/inverse into a caller-provided buffer (resized to
  /// size()); reusing `out` across calls amortizes the allocation away.
  void forward_into(cvec& out, std::span<const cplx> input) const;
  void inverse_into(cvec& out, std::span<const cplx> input) const;

 private:
  void transform(std::span<cplx> data, bool invert) const;

  std::size_t size_;
  std::vector<std::size_t> bit_reverse_;
  cvec twiddles_;  // exp(-j 2 pi k / N) for k in [0, N/2)
};

/// Process-wide immutable plan cache: returns a reference to the shared
/// FftPlan for `size` (power of two, >= 2), building it on first request.
/// Thread-safe; returned references stay valid for the process lifetime.
/// Hot-path users (FFT convolution, the emulator's 64-point transforms)
/// go through here so repeated transforms never rebuild twiddle tables.
const FftPlan& shared_fft_plan(std::size_t size);

/// Smallest power of two >= n (n must be representable; n == 0 -> 1).
std::size_t next_power_of_two(std::size_t n);

/// O(n^2) reference DFT with the same convention as FftPlan::forward.
cvec dft(std::span<const cplx> input);

/// O(n^2) reference inverse DFT (includes 1/N scaling).
cvec idft(std::span<const cplx> input);

/// Swaps the two halves of a spectrum so DC moves to the middle
/// (odd lengths follow the numpy fftshift convention).
cvec fftshift(std::span<const cplx> input);

/// Inverse of fftshift.
cvec ifftshift(std::span<const cplx> input);

/// True if `n` is a power of two (and nonzero).
bool is_power_of_two(std::size_t n);

}  // namespace ctc::dsp
