#include "dsp/iq_io.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "dsp/require.h"

namespace ctc::dsp {

void write_cf32(const std::filesystem::path& path, std::span<const cplx> samples) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CTC_REQUIRE_MSG(out.good(), "cannot open file for writing: " + path.string());
  std::vector<float> buffer;
  buffer.reserve(samples.size() * 2);
  for (const cplx& s : samples) {
    buffer.push_back(static_cast<float>(s.real()));
    buffer.push_back(static_cast<float>(s.imag()));
  }
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size() * sizeof(float)));
  CTC_REQUIRE_MSG(out.good(), "write failed: " + path.string());
}

cvec read_cf32(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CTC_REQUIRE_MSG(in.good(), "cannot open file for reading: " + path.string());
  const std::streamsize bytes = in.tellg();
  CTC_REQUIRE_MSG(bytes % (2 * sizeof(float)) == 0,
                  "file is not a whole number of complex float32 samples");
  in.seekg(0);
  std::vector<float> buffer(static_cast<std::size_t>(bytes) / sizeof(float));
  in.read(reinterpret_cast<char*>(buffer.data()), bytes);
  CTC_REQUIRE_MSG(in.good(), "read failed: " + path.string());
  cvec samples(buffer.size() / 2);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = {static_cast<double>(buffer[2 * i]),
                  static_cast<double>(buffer[2 * i + 1])};
  }
  return samples;
}

void write_csv(const std::filesystem::path& path, std::span<const cplx> samples) {
  std::ofstream out(path, std::ios::trunc);
  CTC_REQUIRE_MSG(out.good(), "cannot open file for writing: " + path.string());
  out << "index,i,q\n";
  char line[96];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::snprintf(line, sizeof line, "%zu,%.9g,%.9g\n", i, samples[i].real(),
                  samples[i].imag());
    out << line;
  }
  CTC_REQUIRE_MSG(out.good(), "write failed: " + path.string());
}

}  // namespace ctc::dsp
