#include "dsp/window.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::dsp {

rvec make_window(WindowKind kind, std::size_t n) {
  CTC_REQUIRE(n >= 1);
  rvec w(n, 1.0);
  if (n == 1 || kind == WindowKind::rectangular) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    switch (kind) {
      case WindowKind::rectangular:
        break;
      case WindowKind::hann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowKind::hamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowKind::blackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) + 0.08 * std::cos(2.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

}  // namespace ctc::dsp
