// Core sample types shared by every ctc library.
#pragma once

#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

namespace ctc {

/// Complex baseband sample. Double precision everywhere: the workloads in
/// this reproduction are small (thousands of samples) and the cumulant
/// statistics in the defense are sensitive to accumulation error.
using cplx = std::complex<double>;

/// A chunk of complex baseband waveform.
using cvec = std::vector<cplx>;

/// A chunk of real-valued samples (soft chip values, magnitudes, ...).
using rvec = std::vector<double>;

/// Raw bit containers. One byte per bit (0/1) keeps indexing trivial and is
/// plenty fast at these sizes.
using bitvec = std::vector<std::uint8_t>;
using bytevec = std::vector<std::uint8_t>;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

}  // namespace ctc
