// Runtime-dispatched SIMD kernel layer for the complex hot loops.
//
// Every dense inner loop in the repo — FIR MAC, mixer rotation, matched
// filtering, cumulant accumulation, energy reduction, packed-chip
// correlation — funnels through the function-pointer table in this header.
// The implementation level is chosen ONCE per process (first use) from
// CPUID, and can be forced with the CTC_SIMD environment variable:
//
//     CTC_SIMD=scalar   portable reference implementations
//     CTC_SIMD=avx2     AVX2+FMA implementations (fails loudly if the CPU
//                       cannot execute them)
//
// Dispatch is a pure function of the environment and the CPU, never of the
// calling thread, so a process is internally consistent: the CI determinism
// gates (threads=1 vs N, shard partitions, kill/resume) compare runs of the
// same binary in the same environment and therefore stay byte-identical.
//
// Equivalence contracts (each kernel documents which one it keeps; the
// suite in tests/dsp/kernels_equivalence_test.cpp pins them):
//
//   bitwise    The scalar implementation mirrors the SIMD arithmetic
//              structure exactly — same per-element expressions, no FMA
//              contraction, and the documented fixed lane-fold order for
//              reductions — so scalar and AVX2 agree bit for bit on every
//              input. Integer kernels are trivially in this class.
//
//   tolerance  The scalar implementation is the pinned pre-optimization
//              reference (the `*_reference` oracle pattern); the SIMD form
//              uses FMA or algebraic rearrangement and agrees to a small
//              relative tolerance.
//
// Reductions in the bitwise class accumulate into LANE structures: element
// i of the input goes to lane (i mod L), each lane sums sequentially, and
// the final fold is "vertical add of the register halves, then horizontal
// add of adjacent pairs" — exactly what the AVX2 code does with two
// accumulator registers. See fold helpers below.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dsp/types.h"

namespace ctc::dsp::kernels {

/// Implementation level of the kernel table.
enum class SimdLevel {
  scalar = 0,  ///< portable reference (always available)
  avx2 = 1,    ///< AVX2 + FMA (x86-64 only)
};

/// Human-readable level name ("scalar" / "avx2").
const char* level_name(SimdLevel level);

/// Fourth-order cumulant running sums (the inputs of Eqs. 8-9):
///   sum_x2 = sum x^2, sum_x4 = sum x^4, sum_x3_conj = sum x^3 conj(x),
///   sum_abs2 = sum |x|^2, sum_abs4 = sum |x|^4.
struct CumulantSums {
  cplx sum_x2{0.0, 0.0};
  cplx sum_x4{0.0, 0.0};
  cplx sum_x3_conj{0.0, 0.0};
  double sum_abs2 = 0.0;
  double sum_abs4 = 0.0;
};

/// Lane-structured cumulant accumulator: sample i contributes to lane
/// (i mod 4) counted from the accumulator's birth (streaming callers carry
/// the global sample count so partitioning a stream into blocks cannot
/// change which lane a sample lands in). Folding the lanes in the fixed
/// order (0+2)+(1+3) yields sums that are bit-identical across dispatch
/// levels AND across any block partition of the same sample sequence.
struct CumulantLanes {
  CumulantSums lane[4];

  /// Fixed-order fold: (lane0 + lane2) + (lane1 + lane3) per field.
  CumulantSums fold() const;
};

/// The dispatched kernel table. All pointers are non-null at every level.
struct KernelTable {
  // -- FIR / convolution (tolerance) ---------------------------------------
  /// Full convolution: accumulates signal (*) taps into `out`, which the
  /// caller provides zero-initialized with n + t - 1 elements. Scalar is
  /// the legacy scatter loop of convolve_direct(); AVX2 is an FMA gather.
  void (*fir_mac)(const cplx* signal, std::size_t n, const double* taps,
                  std::size_t t, cplx* out);

  // -- mixer / rotator (tolerance) -----------------------------------------
  /// out[i] = in[i] * exp(j*phase_i) where phase_0 = phase and
  /// phase_{i+1} = wrap(phase_i + step) (wrap subtracts/adds 2*pi past
  /// +-2*pi, matching the legacy Mixer). Returns the final wrapped phase,
  /// which is computed by the exact scalar recurrence at EVERY level so
  /// mixer state stays bit-identical across levels even though the samples
  /// are only tolerance-equivalent (AVX2 uses a renormalized phasor
  /// recurrence instead of per-sample sincos). in == out is allowed.
  double (*rotate)(const cplx* in, std::size_t n, cplx* out, double phase,
                   double step);

  // -- elementwise complex ops (bitwise) -----------------------------------
  /// x[i] += y[i].
  void (*cadd)(cplx* x, const cplx* y, std::size_t n);
  /// x[i] *= s (complex scalar; same rounding as std::complex operator*).
  void (*cscale)(cplx* x, std::size_t n, cplx s);
  /// x[i] *= s (real scalar).
  void (*rscale)(cplx* x, std::size_t n, double s);
  /// x[i] *= y[i] (complex elementwise; FFT spectrum product).
  void (*cmul)(cplx* x, const cplx* y, std::size_t n);
  /// out[i] = in[i] * w[i] (real window).
  void (*apply_window)(const cplx* in, const double* w, std::size_t n,
                       cplx* out);
  /// acc[i] += |x[i]|^2 (Welch PSD accumulation).
  void (*accumulate_mag2)(double* acc, const cplx* x, std::size_t n);
  /// In-place two-tap filter, backward sweep:
  /// x[i] = a*x[i] + b*x[i-1] (x[-1] = 0). The per-element expression is
  /// fl(fl(a*xi) + fl(b*xi1)) — identical to the legacy timing-offset loop.
  void (*two_tap)(cplx* x, std::size_t n, double a, double b);

  // -- complex division (bitwise) ------------------------------------------
  /// x[i] /= h, exactly as std::complex operator/= rounds it (the libgcc
  /// __divdc3 call, Smith-scaled) — the legacy equalizer numerics. Every
  /// level runs the same scalar routine: the division is branchy and not
  /// worth forking numerics to vectorize.
  void (*cdiv)(cplx* x, std::size_t n, cplx h);

  // -- reductions (bitwise, lane-structured) -------------------------------
  /// sum over components c of |c|^2 with an 8-real-lane structure
  /// (component m -> lane m mod 8; fold: vertical halves then pairs).
  double (*energy)(const cplx* x, std::size_t n);
  /// sum a[i] * conj(b[i]) with a 4-complex-lane structure.
  cplx (*dot_conj)(const cplx* a, const cplx* b, std::size_t n);
  /// Sliding strip of conjugate dots: out[s] = dot_conj(a + s, b, n) for
  /// every s in [0, m), bit for bit — the per-offset summation order and
  /// lane fold are exactly dot_conj's. `out` must not alias `a` or `b`.
  /// The AVX2 form keeps four offsets in flight per pass, sharing each
  /// reference broadcast across the strip, which is what turns the frame
  /// scanner's per-offset sweep into a cache-resident blocked one.
  void (*corr_many)(const cplx* a, const cplx* b, std::size_t n,
                    std::size_t m, cplx* out);
  /// Accumulates samples into `lanes` continuing at global sample index
  /// `start_index` (lane = (start_index + i) mod 4).
  void (*cumulant_acc)(const cplx* x, std::size_t n, std::size_t start_index,
                       CumulantLanes* lanes);

  // -- O-QPSK matched filter (tolerance) -----------------------------------
  /// soft[i] = (sum_s branch_i(wave[i*spc + s]) * pulse[s]) / pulse_energy,
  /// branch_i = real part for even i, imaginary for odd (the O-QPSK I/Q
  /// offset). pulse has plen = 2*spc taps. Scalar is the legacy
  /// OqpskDemodulator::soft_chips loop.
  void (*oqpsk_mf)(const cplx* wave, std::size_t num_chips, std::size_t spc,
                   const double* pulse, std::size_t plen, double pulse_energy,
                   double* soft);

  // -- packed-chip correlation (bitwise, integer) --------------------------
  /// Packs m consecutive 32-chip blocks (nonzero byte -> 1 bit, bit j =
  /// chip j) into out[0..m).
  void (*pack_hard_chips)(const std::uint8_t* chips, std::size_t m,
                          std::uint32_t* out);
  /// Packs discriminator signs: bit j of out[k] = (freq[32k + j] > 0).
  void (*pack_sign_chips)(const double* freq, std::size_t m,
                          std::uint32_t* out);
  /// For each received word, the best of 16 candidate rows by Hamming
  /// distance of the masked XOR; ties break to the LOWEST row index
  /// (strict-less update, matching despread_block()).
  void (*despread_words)(const std::uint32_t* received, std::size_t m,
                         const std::uint32_t* rows16, std::uint32_t mask,
                         std::uint8_t* symbols, std::uint8_t* distances);
  /// Single-word variant (the differential despreader's sequential chain).
  void (*match16)(std::uint32_t observed, const std::uint32_t* rows16,
                  std::uint32_t mask, std::uint8_t* symbol,
                  std::uint8_t* distance);
};

/// The kernel table for an explicit level. `scalar` always works; asking
/// for `avx2` on a CPU without AVX2+FMA trips a contract failure. Tests use
/// this to compare levels side by side regardless of CTC_SIMD.
const KernelTable& table(SimdLevel level);

/// Best level this CPU can execute (CPUID probe, cached).
SimdLevel best_supported_level();

/// The level active() dispatches to: CTC_SIMD if set (invalid values trip
/// a contract failure), else best_supported_level(). Resolved once.
SimdLevel active_level();

/// The process-wide dispatched table — the one hot loops call through.
const KernelTable& active();

}  // namespace ctc::dsp::kernels
