// Kernel dispatch: one CPUID probe + one CTC_SIMD env read per process.
#include "dsp/kernels/kernels.h"

#include <cstdlib>
#include <string_view>

#include "dsp/kernels/kernels_internal.h"
#include "dsp/require.h"

namespace ctc::dsp::kernels {

const char* level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::scalar: return "scalar";
    case SimdLevel::avx2: return "avx2";
  }
  CTC_REQUIRE_MSG(false, "unknown SimdLevel");
}

CumulantSums CumulantLanes::fold() const {
  // Fixed fold order (lane0 + lane2) + (lane1 + lane3): the AVX2 vertical
  // register add followed by the horizontal pair add. Pure additions, so
  // this is safe to compile anywhere (no contraction hazard).
  CumulantSums out;
  out.sum_x2 = (lane[0].sum_x2 + lane[2].sum_x2) +
               (lane[1].sum_x2 + lane[3].sum_x2);
  out.sum_x4 = (lane[0].sum_x4 + lane[2].sum_x4) +
               (lane[1].sum_x4 + lane[3].sum_x4);
  out.sum_x3_conj = (lane[0].sum_x3_conj + lane[2].sum_x3_conj) +
                    (lane[1].sum_x3_conj + lane[3].sum_x3_conj);
  out.sum_abs2 = (lane[0].sum_abs2 + lane[2].sum_abs2) +
                 (lane[1].sum_abs2 + lane[3].sum_abs2);
  out.sum_abs4 = (lane[0].sum_abs4 + lane[2].sum_abs4) +
                 (lane[1].sum_abs4 + lane[3].sum_abs4);
  return out;
}

SimdLevel best_supported_level() {
  static const SimdLevel level = [] {
#if defined(__x86_64__) || defined(_M_X64)
    if (detail::avx2_compiled() && __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
      return SimdLevel::avx2;
    }
#endif
    return SimdLevel::scalar;
  }();
  return level;
}

const KernelTable& table(SimdLevel level) {
  if (level == SimdLevel::avx2) {
    CTC_REQUIRE_MSG(best_supported_level() == SimdLevel::avx2,
                    "avx2 kernels requested on a CPU/build without AVX2+FMA");
    return detail::avx2_table();
  }
  return detail::scalar_table();
}

SimdLevel active_level() {
  static const SimdLevel level = [] {
    const char* env = std::getenv("CTC_SIMD");
    if (env == nullptr || *env == '\0') return best_supported_level();
    const std::string_view choice(env);
    if (choice == "scalar") return SimdLevel::scalar;
    CTC_REQUIRE_MSG(choice == "avx2",
                    "CTC_SIMD must be 'scalar' or 'avx2'");
    CTC_REQUIRE_MSG(best_supported_level() == SimdLevel::avx2,
                    "CTC_SIMD=avx2 but this CPU/build lacks AVX2+FMA");
    return SimdLevel::avx2;
  }();
  return level;
}

const KernelTable& active() {
  static const KernelTable& dispatched = table(active_level());
  return dispatched;
}

}  // namespace ctc::dsp::kernels
