// AVX2+FMA kernel table.
//
// Compiled with -mavx2 -mfma -ffp-contract=off (src/dsp/CMakeLists.txt):
// intrinsics supply the vector ops, and disabling contraction means the
// scalar heads/tails in this TU (shared with scalar_impl.h) round exactly
// like the scalar table — that is what makes the bitwise contracts hold.
// FMA appears ONLY as explicit _mm256_fmadd_pd / std::fma in the two
// tolerance-class kernels (fir_mac, oqpsk_mf).
//
// Lane conventions (see kernels.h): reductions keep two accumulator
// registers A (elements ≡ 0,1 mod 4 / components 0-3 mod 8) and B
// (elements ≡ 2,3 mod 4 / components 4-7 mod 8); tails spill the lanes and
// continue with the scalar_impl code, so scalar/AVX2 equality is by
// construction rather than by parallel maintenance.
#include "dsp/kernels/kernels_internal.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "dsp/kernels/scalar_impl.h"

namespace ctc::dsp::kernels::detail {
namespace {

inline const double* as_doubles(const cplx* p) {
  return reinterpret_cast<const double*>(p);
}
inline double* as_doubles(cplx* p) { return reinterpret_cast<double*>(p); }

/// [x0,x1,x2,x3] -> [x1,x0,x3,x2] (swap re/im within each complex).
inline __m256d swap_pairs(__m256d v) { return _mm256_permute_pd(v, 0x5); }

/// Sign mask that negates the odd (imaginary) lanes on XOR.
inline __m256d negate_odd_mask() {
  return _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
}

/// Packed complex multiply: two interleaved complexes per register.
/// Rounding per lane: re = fl(fl(ar*br) - fl(ai*bi)),
/// im = fl(fl(ai*br) + fl(ar*bi)) — the libstdc++ operator* structure.
inline __m256d cmul_packed(__m256d a, __m256d b) {
  const __m256d t1 = _mm256_mul_pd(a, _mm256_movedup_pd(b));
  const __m256d t2 = _mm256_mul_pd(swap_pairs(a), _mm256_permute_pd(b, 0xF));
  return _mm256_addsub_pd(t1, t2);
}

/// Splits 4 interleaved complexes at p into real and imaginary registers.
inline void deinterleave4(const double* p, __m256d* re, __m256d* im) {
  const __m256d a = _mm256_loadu_pd(p);
  const __m256d b = _mm256_loadu_pd(p + 4);
  const __m256d lo = _mm256_permute2f128_pd(a, b, 0x20);
  const __m256d hi = _mm256_permute2f128_pd(a, b, 0x31);
  *re = _mm256_unpacklo_pd(lo, hi);
  *im = _mm256_unpackhi_pd(lo, hi);
}

// ---------------------------------------------------------------------------
// fir_mac (tolerance): gather form, ascending j, explicit FMA. Every
// interior output (full tap window) uses identical per-lane arithmetic
// regardless of position — vector blocks and the scalar interior leftover
// both round as fl(fma(sample, tap, acc)) — preserving the bitwise
// time-invariance the emulator's slot LUT relies on.
// ---------------------------------------------------------------------------

void edge_gather(const cplx* signal, std::size_t n, const double* taps,
                 std::size_t t, cplx* out, std::size_t k) {
  const std::size_t jlo = k >= n ? k - (n - 1) : 0;
  const std::size_t jhi = k < t - 1 ? k : t - 1;
  double re = out[k].real();
  double im = out[k].imag();
  for (std::size_t j = jlo; j <= jhi; ++j) {
    re = std::fma(signal[k - j].real(), taps[j], re);
    im = std::fma(signal[k - j].imag(), taps[j], im);
  }
  out[k] = cplx{re, im};
}

void fir_mac(const cplx* signal, std::size_t n, const double* taps,
             std::size_t t, cplx* out) {
  if (n == 0 || t == 0) return;
  // Head: outputs with a truncated tap window (and, when t-1 > n, the
  // short-signal outputs past n that the tail loop below must then skip).
  const std::size_t head_end = t - 1 < n + t - 1 ? t - 1 : n + t - 1;
  for (std::size_t k = 0; k < head_end; ++k) {
    edge_gather(signal, n, taps, t, out, k);
  }
  // Interior: full tap window. 4 outputs (2 registers) per iteration.
  std::size_t k = t - 1;
  for (; k + 4 <= n; k += 4) {
    __m256d acc0 = _mm256_loadu_pd(as_doubles(out + k));
    __m256d acc1 = _mm256_loadu_pd(as_doubles(out + k + 2));
    for (std::size_t j = 0; j < t; ++j) {
      const __m256d tap = _mm256_set1_pd(taps[j]);
      const __m256d s0 = _mm256_loadu_pd(as_doubles(signal + (k - j)));
      const __m256d s1 = _mm256_loadu_pd(as_doubles(signal + (k - j) + 2));
      acc0 = _mm256_fmadd_pd(s0, tap, acc0);
      acc1 = _mm256_fmadd_pd(s1, tap, acc1);
    }
    _mm256_storeu_pd(as_doubles(out + k), acc0);
    _mm256_storeu_pd(as_doubles(out + k + 2), acc1);
  }
  for (; k < n; ++k) {
    // Interior leftover: same full-window scalar FMA as the vector lanes.
    double re = out[k].real();
    double im = out[k].imag();
    for (std::size_t j = 0; j < t; ++j) {
      re = std::fma(signal[k - j].real(), taps[j], re);
      im = std::fma(signal[k - j].imag(), taps[j], im);
    }
    out[k] = cplx{re, im};
  }
  // Tail: truncated signal window.
  for (k = n > t - 1 ? n : t - 1; k < n + t - 1; ++k) {
    edge_gather(signal, n, taps, t, out, k);
  }
}

// ---------------------------------------------------------------------------
// rotate (tolerance samples, bitwise final phase): phasor recurrence
// re-anchored from the exact scalar phase every 128 samples.
// ---------------------------------------------------------------------------

double rotate(const cplx* in, std::size_t n, cplx* out, double phase,
              double step) {
  constexpr std::size_t kAnchor = 128;
  const double c4 = std::cos(4.0 * step);
  const double s4 = std::sin(4.0 * step);
  const __m256d rot4 = _mm256_set_pd(s4, c4, s4, c4);
  std::size_t i = 0;
  while (i + 4 <= n) {
    const double ph0 = phase;
    const double ph1 = scalar_impl::wrap_phase_step(ph0, step);
    const double ph2 = scalar_impl::wrap_phase_step(ph1, step);
    const double ph3 = scalar_impl::wrap_phase_step(ph2, step);
    __m256d p01 = _mm256_set_pd(std::sin(ph1), std::cos(ph1), std::sin(ph0),
                                std::cos(ph0));
    __m256d p23 = _mm256_set_pd(std::sin(ph3), std::cos(ph3), std::sin(ph2),
                                std::cos(ph2));
    std::size_t remaining = n - i;
    if (remaining > kAnchor) remaining = kAnchor;
    const std::size_t block = remaining & ~std::size_t{3};
    for (std::size_t done = 0; done < block; done += 4) {
      const __m256d v0 = _mm256_loadu_pd(as_doubles(in + i));
      const __m256d v1 = _mm256_loadu_pd(as_doubles(in + i + 2));
      _mm256_storeu_pd(as_doubles(out + i), cmul_packed(v0, p01));
      _mm256_storeu_pd(as_doubles(out + i + 2), cmul_packed(v1, p23));
      p01 = cmul_packed(p01, rot4);
      p23 = cmul_packed(p23, rot4);
      // Advance the exact phase recurrence past the 4 consumed samples so
      // re-anchoring (and the returned state) match the scalar level.
      phase = scalar_impl::wrap_phase_step(phase, step);
      phase = scalar_impl::wrap_phase_step(phase, step);
      phase = scalar_impl::wrap_phase_step(phase, step);
      phase = scalar_impl::wrap_phase_step(phase, step);
      i += 4;
    }
  }
  return scalar_table().rotate(in + i, n - i, out + i, phase, step);
}

// ---------------------------------------------------------------------------
// Elementwise complex ops (bitwise).
//
// Tail leftovers call through the scalar TABLE (an indirect call into the
// scalar TU's object code), not the inlined scalar_impl functions: GCC's
// vectorizer recognizes the complex-multiply shape of the inlined loops and
// emits vfmaddsub in this -mfma TU even under -ffp-contract=off, which
// would fork the tails from the scalar level by 1 ulp.
// ---------------------------------------------------------------------------

void cadd(cplx* x, const cplx* y, std::size_t n) {
  double* xd = as_doubles(x);
  const double* yd = as_doubles(y);
  const std::size_t m = 2 * n;
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    _mm256_storeu_pd(
        xd + k, _mm256_add_pd(_mm256_loadu_pd(xd + k), _mm256_loadu_pd(yd + k)));
  }
  scalar_table().cadd(x + k / 2, y + k / 2, n - k / 2);
}

void cscale(cplx* x, std::size_t n, cplx s) {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  double* xd = as_doubles(x);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(xd + 2 * i);
    const __m256d t1 = _mm256_mul_pd(v, sr);
    const __m256d t2 = _mm256_mul_pd(swap_pairs(v), si);
    _mm256_storeu_pd(xd + 2 * i, _mm256_addsub_pd(t1, t2));
  }
  scalar_table().cscale(x + i, n - i, s);
}

void rscale(cplx* x, std::size_t n, double s) {
  const __m256d vs = _mm256_set1_pd(s);
  double* xd = as_doubles(x);
  const std::size_t m = 2 * n;
  std::size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    _mm256_storeu_pd(xd + k, _mm256_mul_pd(_mm256_loadu_pd(xd + k), vs));
  }
  scalar_table().rscale(x + k / 2, n - k / 2, s);
}

void cmul(cplx* x, const cplx* y, std::size_t n) {
  double* xd = as_doubles(x);
  const double* yd = as_doubles(y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(xd + 2 * i);
    const __m256d w = _mm256_loadu_pd(yd + 2 * i);
    _mm256_storeu_pd(xd + 2 * i, cmul_packed(v, w));
  }
  scalar_table().cmul(x + i, y + i, n - i);
}

void apply_window(const cplx* in, const double* w, std::size_t n, cplx* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d w01 = _mm256_permute4x64_pd(wv, 0x50);  // [w0,w0,w1,w1]
    const __m256d w23 = _mm256_permute4x64_pd(wv, 0xFA);  // [w2,w2,w3,w3]
    const __m256d v0 = _mm256_loadu_pd(as_doubles(in + i));
    const __m256d v1 = _mm256_loadu_pd(as_doubles(in + i + 2));
    _mm256_storeu_pd(as_doubles(out + i), _mm256_mul_pd(v0, w01));
    _mm256_storeu_pd(as_doubles(out + i + 2), _mm256_mul_pd(v1, w23));
  }
  scalar_table().apply_window(in + i, w + i, n - i, out + i);
}

void accumulate_mag2(double* acc, const cplx* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d re;
    __m256d im;
    deinterleave4(as_doubles(x + i), &re, &im);
    const __m256d mag2 =
        _mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), mag2));
  }
  scalar_table().accumulate_mag2(acc + i, x + i, n - i);
}

void two_tap(cplx* x, std::size_t n, double a, double b) {
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  double* xd = as_doubles(x);
  std::size_t i = n;
  // Backward sweep: elements [j, j+1] are written only after [j-1, j] have
  // been read, and every later-read index is below every written one.
  while (i >= 3) {
    const std::size_t j = i - 2;
    const __m256d cur = _mm256_loadu_pd(xd + 2 * j);
    const __m256d prev = _mm256_loadu_pd(xd + 2 * j - 2);
    _mm256_storeu_pd(
        xd + 2 * j,
        _mm256_add_pd(_mm256_mul_pd(cur, va), _mm256_mul_pd(prev, vb)));
    i -= 2;
  }
  scalar_table().two_tap(x, i, a, b);
}

void cdiv(cplx* x, std::size_t n, cplx h) {
  // operator/= lowers to the branchy, Smith-scaled __divdc3 — vectorizing
  // it bitwise-identically is not worth it, so this level runs the scalar
  // TU's exact code.
  scalar_table().cdiv(x, n, h);
}

// ---------------------------------------------------------------------------
// Reductions (bitwise, lane-structured).
// ---------------------------------------------------------------------------

double energy(const cplx* x, std::size_t n) {
  const double* d = as_doubles(x);
  const std::size_t m = 2 * n;
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= m; k += 8) {
    const __m256d va = _mm256_loadu_pd(d + k);
    const __m256d vb = _mm256_loadu_pd(d + k + 4);
    acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(va, va));
    acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(vb, vb));
  }
  double lane[8];
  _mm256_storeu_pd(lane, acc_a);
  _mm256_storeu_pd(lane + 4, acc_b);
  scalar_impl::energy_acc(lane, d + k, m - k);
  return scalar_impl::energy_fold(lane);
}

cplx dot_conj(const cplx* a, const cplx* b, std::size_t n) {
  const __m256d neg_odd = negate_odd_mask();
  __m256d acc_a = _mm256_setzero_pd();  // complexes i % 4 in {0, 1}
  __m256d acc_b = _mm256_setzero_pd();  // complexes i % 4 in {2, 3}
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(as_doubles(a + i));
    const __m256d wa = _mm256_loadu_pd(as_doubles(b + i));
    const __m256d vb = _mm256_loadu_pd(as_doubles(a + i + 2));
    const __m256d wb = _mm256_loadu_pd(as_doubles(b + i + 2));
    // Per complex: [ar*br, ai*bi] and [ai*br, ar*bi]; regroup so each
    // contribution lane is a single rounded sum fl(p +- q).
    const __m256d t1a = _mm256_mul_pd(va, wa);
    const __m256d t2a = _mm256_mul_pd(swap_pairs(va), wa);
    const __m256d s1a = _mm256_unpacklo_pd(t1a, t2a);
    const __m256d s2a = _mm256_xor_pd(_mm256_unpackhi_pd(t1a, t2a), neg_odd);
    acc_a = _mm256_add_pd(acc_a, _mm256_add_pd(s1a, s2a));
    const __m256d t1b = _mm256_mul_pd(vb, wb);
    const __m256d t2b = _mm256_mul_pd(swap_pairs(vb), wb);
    const __m256d s1b = _mm256_unpacklo_pd(t1b, t2b);
    const __m256d s2b = _mm256_xor_pd(_mm256_unpackhi_pd(t1b, t2b), neg_odd);
    acc_b = _mm256_add_pd(acc_b, _mm256_add_pd(s1b, s2b));
  }
  double spill_a[4];
  double spill_b[4];
  _mm256_storeu_pd(spill_a, acc_a);
  _mm256_storeu_pd(spill_b, acc_b);
  double lr[4] = {spill_a[0], spill_a[2], spill_b[0], spill_b[2]};
  double li[4] = {spill_a[1], spill_a[3], spill_b[1], spill_b[3]};
  scalar_impl::dot_conj_acc(lr, li, a + i, b + i, n - i);
  return scalar_impl::dot_conj_fold(lr, li);
}

// corr_many (bitwise): four sliding offsets in flight per pass. Instead of
// dot_conj's one-offset register layout, each accumulator register holds one
// LANE (ref index mod 4) for two adjacent offsets, interleaved as
// [lr_j(s), li_j(s), lr_j(s+1), li_j(s+1)]; ref index i rotates through the
// four lane registers, so every n divides cleanly with no scalar tail. The
// two signal loads per ref index cover all four offsets (adjacent offsets
// read adjacent complexes), and the reference broadcast is shared — that
// sharing is the whole speedup. Per contribution the rounding is exactly
// dot_conj's: addsub of fl(a*br) and fl(swap(a)*(-bi)) gives
// fl(fl(ar*br) + fl(ai*bi)) / fl(fl(ai*br) - fl(ar*bi)) per component,
// and each lane takes one rounded add per ref index.
void corr_many(const cplx* a, const cplx* b, std::size_t n, std::size_t m,
               cplx* out) {
  const double* bd = as_doubles(b);
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    const double* a01 = as_doubles(a + s);
    const double* a23 = as_doubles(a + s + 2);
    __m256d acc01[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                        _mm256_setzero_pd(), _mm256_setzero_pd()};
    __m256d acc23[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                        _mm256_setzero_pd(), _mm256_setzero_pd()};
    const auto step = [&](std::size_t i, std::size_t lane) {
      const __m256d br = _mm256_broadcast_sd(bd + 2 * i);
      const __m256d nbi =
          _mm256_xor_pd(_mm256_broadcast_sd(bd + 2 * i + 1), sign);
      const __m256d v01 = _mm256_loadu_pd(a01 + 2 * i);
      const __m256d v23 = _mm256_loadu_pd(a23 + 2 * i);
      acc01[lane] = _mm256_add_pd(
          acc01[lane], _mm256_addsub_pd(_mm256_mul_pd(v01, br),
                                        _mm256_mul_pd(swap_pairs(v01), nbi)));
      acc23[lane] = _mm256_add_pd(
          acc23[lane], _mm256_addsub_pd(_mm256_mul_pd(v23, br),
                                        _mm256_mul_pd(swap_pairs(v23), nbi)));
    };
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      step(i, 0);
      step(i + 1, 1);
      step(i + 2, 2);
      step(i + 3, 3);
    }
    for (; i < n; ++i) step(i, i & 3);
    alignas(32) double sp01[4][4];
    alignas(32) double sp23[4][4];
    for (std::size_t j = 0; j < 4; ++j) {
      _mm256_store_pd(sp01[j], acc01[j]);
      _mm256_store_pd(sp23[j], acc23[j]);
    }
    for (std::size_t o = 0; o < 2; ++o) {
      const double lr01[4] = {sp01[0][2 * o], sp01[1][2 * o], sp01[2][2 * o],
                              sp01[3][2 * o]};
      const double li01[4] = {sp01[0][2 * o + 1], sp01[1][2 * o + 1],
                              sp01[2][2 * o + 1], sp01[3][2 * o + 1]};
      out[s + o] = scalar_impl::dot_conj_fold(lr01, li01);
      const double lr23[4] = {sp23[0][2 * o], sp23[1][2 * o], sp23[2][2 * o],
                              sp23[3][2 * o]};
      const double li23[4] = {sp23[0][2 * o + 1], sp23[1][2 * o + 1],
                              sp23[2][2 * o + 1], sp23[3][2 * o + 1]};
      out[s + 2 + o] = scalar_impl::dot_conj_fold(lr23, li23);
    }
  }
  // Leftover offsets run the one-offset AVX2 dot (bitwise-equal to scalar).
  for (; s < m; ++s) out[s] = dot_conj(a + s, b, n);
}

void cumulant_acc(const cplx* x, std::size_t n, std::size_t start_index,
                  CumulantLanes* lanes) {
  std::size_t i = 0;
  // Scalar head until the next sample lands in lane 0 — through the scalar
  // table, like the elementwise tails: the inlined cumulant_push re-fuses
  // into vfm* under some flag sets (the sanitizer presets) despite
  // -ffp-contract=off.
  std::size_t head = 0;
  while (head < n && ((start_index + head) & 3) != 0) ++head;
  if (head > 0) {
    scalar_table().cumulant_acc(x, head, start_index, lanes);
    i = head;
  }
  if (n - i >= 4) {
    // Lane j of each register is exactly lanes->lane[j] for one field.
    alignas(32) double x2r_l[4];
    alignas(32) double x2i_l[4];
    alignas(32) double x4r_l[4];
    alignas(32) double x4i_l[4];
    alignas(32) double ur_l[4];
    alignas(32) double ui_l[4];
    alignas(32) double a2_l[4];
    alignas(32) double a4_l[4];
    for (std::size_t j = 0; j < 4; ++j) {
      x2r_l[j] = lanes->lane[j].sum_x2.real();
      x2i_l[j] = lanes->lane[j].sum_x2.imag();
      x4r_l[j] = lanes->lane[j].sum_x4.real();
      x4i_l[j] = lanes->lane[j].sum_x4.imag();
      ur_l[j] = lanes->lane[j].sum_x3_conj.real();
      ui_l[j] = lanes->lane[j].sum_x3_conj.imag();
      a2_l[j] = lanes->lane[j].sum_abs2;
      a4_l[j] = lanes->lane[j].sum_abs4;
    }
    __m256d sx2r = _mm256_load_pd(x2r_l);
    __m256d sx2i = _mm256_load_pd(x2i_l);
    __m256d sx4r = _mm256_load_pd(x4r_l);
    __m256d sx4i = _mm256_load_pd(x4i_l);
    __m256d sur = _mm256_load_pd(ur_l);
    __m256d sui = _mm256_load_pd(ui_l);
    __m256d sa2 = _mm256_load_pd(a2_l);
    __m256d sa4 = _mm256_load_pd(a4_l);
    for (; i + 4 <= n; i += 4) {
      __m256d re;
      __m256d im;
      deinterleave4(as_doubles(x + i), &re, &im);
      const __m256d rr = _mm256_mul_pd(re, re);
      const __m256d ii = _mm256_mul_pd(im, im);
      const __m256d ri = _mm256_mul_pd(re, im);
      const __m256d abs2 = _mm256_add_pd(rr, ii);
      const __m256d x2r = _mm256_sub_pd(rr, ii);
      const __m256d x2i = _mm256_add_pd(ri, ri);
      const __m256d x4r = _mm256_sub_pd(_mm256_mul_pd(x2r, x2r),
                                        _mm256_mul_pd(x2i, x2i));
      const __m256d x2rx2i = _mm256_mul_pd(x2r, x2i);
      const __m256d x4i = _mm256_add_pd(x2rx2i, x2rx2i);
      const __m256d tr = _mm256_sub_pd(_mm256_mul_pd(x2r, re),
                                       _mm256_mul_pd(x2i, im));
      const __m256d ti = _mm256_add_pd(_mm256_mul_pd(x2r, im),
                                       _mm256_mul_pd(x2i, re));
      const __m256d ur = _mm256_add_pd(_mm256_mul_pd(tr, re),
                                       _mm256_mul_pd(ti, im));
      const __m256d ui = _mm256_sub_pd(_mm256_mul_pd(ti, re),
                                       _mm256_mul_pd(tr, im));
      sx2r = _mm256_add_pd(sx2r, x2r);
      sx2i = _mm256_add_pd(sx2i, x2i);
      sx4r = _mm256_add_pd(sx4r, x4r);
      sx4i = _mm256_add_pd(sx4i, x4i);
      sur = _mm256_add_pd(sur, ur);
      sui = _mm256_add_pd(sui, ui);
      sa2 = _mm256_add_pd(sa2, abs2);
      sa4 = _mm256_add_pd(sa4, _mm256_mul_pd(abs2, abs2));
    }
    _mm256_store_pd(x2r_l, sx2r);
    _mm256_store_pd(x2i_l, sx2i);
    _mm256_store_pd(x4r_l, sx4r);
    _mm256_store_pd(x4i_l, sx4i);
    _mm256_store_pd(ur_l, sur);
    _mm256_store_pd(ui_l, sui);
    _mm256_store_pd(a2_l, sa2);
    _mm256_store_pd(a4_l, sa4);
    for (std::size_t j = 0; j < 4; ++j) {
      lanes->lane[j].sum_x2 = cplx{x2r_l[j], x2i_l[j]};
      lanes->lane[j].sum_x4 = cplx{x4r_l[j], x4i_l[j]};
      lanes->lane[j].sum_x3_conj = cplx{ur_l[j], ui_l[j]};
      lanes->lane[j].sum_abs2 = a2_l[j];
      lanes->lane[j].sum_abs4 = a4_l[j];
    }
  }
  // Scalar tail (starts at lane 0 because the vector loop consumed 4k).
  if (i < n) {
    scalar_table().cumulant_acc(x + i, n - i, start_index + i, lanes);
  }
}

// ---------------------------------------------------------------------------
// O-QPSK matched filter (tolerance): per-chip fused deinterleave + dot.
// ---------------------------------------------------------------------------

void oqpsk_mf(const cplx* wave, std::size_t num_chips, std::size_t spc,
              const double* pulse, std::size_t plen, double pulse_energy,
              double* soft) {
  // Deinterleave is fused into the per-chip dot (no staging buffers: with
  // the repo's short half-sine pulse the extra memory round-trip costs more
  // than it saves). Tolerance class — lane fold plus explicit FMA.
  for (std::size_t i = 0; i < num_chips; ++i) {
    const double* base = as_doubles(wave + i * spc);
    const bool in_phase = (i % 2 == 0);
    __m256d acc = _mm256_setzero_pd();
    std::size_t s = 0;
    for (; s + 4 <= plen; s += 4) {
      __m256d re;
      __m256d im;
      deinterleave4(base + 2 * s, &re, &im);
      acc = _mm256_fmadd_pd(in_phase ? re : im, _mm256_loadu_pd(pulse + s),
                            acc);
    }
    double lane[4];
    _mm256_storeu_pd(lane, acc);
    double sum = (lane[0] + lane[2]) + (lane[1] + lane[3]);
    for (; s < plen; ++s) {
      sum = std::fma(base[2 * s + (in_phase ? 0 : 1)], pulse[s], sum);
    }
    soft[i] = sum / pulse_energy;
  }
}

// ---------------------------------------------------------------------------
// Packed-chip correlation (bitwise, integer).
// ---------------------------------------------------------------------------

void pack_hard_chips(const std::uint8_t* chips, std::size_t m,
                     std::uint32_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i all_ones = _mm256_set1_epi8(-1);
  for (std::size_t word = 0; word < m; ++word) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(chips + word * 32));
    const __m256i nonzero =
        _mm256_xor_si256(_mm256_cmpeq_epi8(v, zero), all_ones);
    out[word] = static_cast<std::uint32_t>(_mm256_movemask_epi8(nonzero));
  }
}

void pack_sign_chips(const double* freq, std::size_t m, std::uint32_t* out) {
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t word = 0; word < m; ++word) {
    std::uint32_t bits = 0;
    for (std::uint32_t group = 0; group < 8; ++group) {
      const __m256d v = _mm256_loadu_pd(freq + word * 32 + group * 4);
      const auto mask = static_cast<std::uint32_t>(
          _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_GT_OQ)));
      bits |= mask << (group * 4);
    }
    out[word] = bits;
  }
}

/// Per-32-bit-lane popcount: pshufb nibble LUT, then horizontal byte sums
/// via maddubs/madd.
inline __m256i popcount_epi32(__m256i v) {
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i lo = _mm256_and_si256(v, low4);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low4);
  const __m256i byte_counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                              _mm256_shuffle_epi8(lut, hi));
  const __m256i pair_sums =
      _mm256_maddubs_epi16(byte_counts, _mm256_set1_epi8(1));
  return _mm256_madd_epi16(pair_sums, _mm256_set1_epi16(1));
}

void despread_words(const std::uint32_t* received, std::size_t m,
                    const std::uint32_t* rows16, std::uint32_t mask,
                    std::uint8_t* symbols, std::uint8_t* distances) {
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  __m256i vrows[16];
  for (int row = 0; row < 16; ++row) {
    vrows[row] = _mm256_set1_epi32(static_cast<int>(rows16[row]));
  }
  std::size_t k = 0;
  for (; k + 8 <= m; k += 8) {
    const __m256i words = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(received + k));
    __m256i best_dist = _mm256_set1_epi32(64);
    __m256i best_sym = _mm256_setzero_si256();
    for (int row = 0; row < 16; ++row) {
      const __m256i diff =
          _mm256_and_si256(_mm256_xor_si256(words, vrows[row]), vmask);
      const __m256i dist = popcount_epi32(diff);
      // Update strictly when dist < best: ties keep the lowest row.
      const __m256i closer = _mm256_cmpgt_epi32(best_dist, dist);
      best_dist = _mm256_blendv_epi8(best_dist, dist, closer);
      best_sym =
          _mm256_blendv_epi8(best_sym, _mm256_set1_epi32(row), closer);
    }
    alignas(32) std::uint32_t dist_out[8];
    alignas(32) std::uint32_t sym_out[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(dist_out), best_dist);
    _mm256_store_si256(reinterpret_cast<__m256i*>(sym_out), best_sym);
    for (std::size_t j = 0; j < 8; ++j) {
      symbols[k + j] = static_cast<std::uint8_t>(sym_out[j]);
      distances[k + j] = static_cast<std::uint8_t>(dist_out[j]);
    }
  }
  scalar_impl::despread_words(received + k, m - k, rows16, mask, symbols + k,
                              distances + k);
}

}  // namespace

bool avx2_compiled() { return true; }

const KernelTable& avx2_table() {
  static constexpr KernelTable table = {
      .fir_mac = fir_mac,
      .rotate = rotate,
      .cadd = cadd,
      .cscale = cscale,
      .rscale = rscale,
      .cmul = cmul,
      .apply_window = apply_window,
      .accumulate_mag2 = accumulate_mag2,
      .two_tap = two_tap,
      .cdiv = cdiv,
      .energy = energy,
      .dot_conj = dot_conj,
      .corr_many = corr_many,
      .cumulant_acc = cumulant_acc,
      .oqpsk_mf = oqpsk_mf,
      .pack_hard_chips = pack_hard_chips,
      .pack_sign_chips = pack_sign_chips,
      .despread_words = despread_words,
      // The differential chain is latency-bound, not throughput-bound; the
      // scalar match is already optimal per word.
      .match16 = scalar_impl::match16,
  };
  return table;
}

}  // namespace ctc::dsp::kernels::detail

#else  // non-x86-64: no AVX2 TU; dispatcher never selects this table.

namespace ctc::dsp::kernels::detail {

bool avx2_compiled() { return false; }

const KernelTable& avx2_table() { return scalar_table(); }

}  // namespace ctc::dsp::kernels::detail

#endif
