// Portable kernel table: thin bindings over scalar_impl.h.
//
// Compiled with -ffp-contract=off (see src/dsp/CMakeLists.txt) so the
// multiply-add structure written in scalar_impl.h is what actually runs —
// the bitwise scalar/AVX2 contracts depend on it.
#include "dsp/kernels/kernels_internal.h"
#include "dsp/kernels/scalar_impl.h"

namespace ctc::dsp::kernels::detail {

const KernelTable& scalar_table() {
  static constexpr KernelTable table = {
      .fir_mac = scalar_impl::fir_mac,
      .rotate = scalar_impl::rotate,
      .cadd = scalar_impl::cadd,
      .cscale = scalar_impl::cscale,
      .rscale = scalar_impl::rscale,
      .cmul = scalar_impl::cmul,
      .apply_window = scalar_impl::apply_window,
      .accumulate_mag2 = scalar_impl::accumulate_mag2,
      .two_tap = scalar_impl::two_tap,
      .cdiv = scalar_impl::cdiv,
      .energy = scalar_impl::energy,
      .dot_conj = scalar_impl::dot_conj,
      .corr_many = scalar_impl::corr_many,
      .cumulant_acc = scalar_impl::cumulant_acc,
      .oqpsk_mf = scalar_impl::oqpsk_mf,
      .pack_hard_chips = scalar_impl::pack_hard_chips,
      .pack_sign_chips = scalar_impl::pack_sign_chips,
      .despread_words = scalar_impl::despread_words,
      .match16 = scalar_impl::match16,
  };
  return table;
}

}  // namespace ctc::dsp::kernels::detail
