// Portable kernel implementations, shared between the scalar table and the
// AVX2 TU (which reuses them for unaligned heads, sub-vector tails, and the
// kernels whose cost is a sequential dependency chain rather than math).
//
// ONLY include this from src/dsp/kernels/*.cpp: both kernel TUs compile
// with -ffp-contract=off, which is what makes the bitwise-class contracts
// hold. Including it from a TU with default contraction would silently
// fuse the multiply-adds below into FMAs and break scalar/AVX2 equality.
//
// Each function's floating-point expression structure is a contract (see
// kernels.h); do not "simplify" the arithmetic here without updating the
// AVX2 side and the equivalence suite together.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "dsp/kernels/kernels.h"
#include "dsp/types.h"

namespace ctc::dsp::kernels::scalar_impl {

// Legacy scatter form of convolve_direct(): i-outer, j-inner, so output k
// accumulates taps in descending-j order. This is the pinned reference the
// AVX2 gather form (ascending-j, FMA) is tolerance-tested against.
inline void fir_mac(const cplx* signal, std::size_t n, const double* taps,
                    std::size_t t, cplx* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const cplx x = signal[i];
    for (std::size_t j = 0; j < t; ++j) out[i + j] += x * taps[j];
  }
}

// The legacy Mixer wrap step: two independent ifs, not if/else.
inline double wrap_phase_step(double phase, double step) {
  phase += step;
  if (phase > kTwoPi) phase -= kTwoPi;
  if (phase < -kTwoPi) phase += kTwoPi;
  return phase;
}

// Legacy Mixer::process loop: per-sample sincos of the exact phase.
inline double rotate(const cplx* in, std::size_t n, cplx* out, double phase,
                     double step) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = in[i] * cplx{std::cos(phase), std::sin(phase)};
    phase = wrap_phase_step(phase, step);
  }
  return phase;
}

inline void cadd(cplx* x, const cplx* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] += y[i];
}

// Mirrors libstdc++ complex*=: re' = fl(fl(re*sr) - fl(im*si)),
// im' = fl(fl(re*si) + fl(im*sr)) — the addsub lane structure on AVX2.
inline void cscale(cplx* x, std::size_t n, cplx s) {
  const double sr = s.real();
  const double si = s.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    x[i] = cplx{(re * sr) - (im * si), (im * sr) + (re * si)};
  }
}

inline void rscale(cplx* x, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = cplx{x[i].real() * s, x[i].imag() * s};
  }
}

inline void cmul(cplx* x, const cplx* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    const double yr = y[i].real();
    const double yi = y[i].imag();
    x[i] = cplx{(re * yr) - (im * yi), (im * yr) + (re * yi)};
  }
}

inline void apply_window(const cplx* in, const double* w, std::size_t n,
                         cplx* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = cplx{in[i].real() * w[i], in[i].imag() * w[i]};
  }
}

inline void accumulate_mag2(double* acc, const cplx* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    acc[i] += (re * re) + (im * im);
  }
}

// Backward two-tap sweep of the legacy timing-offset loop. The first
// element keeps its explicit fl(b*0) add so signed-zero behaviour matches
// the legacy `previous = {0, 0}` initialization exactly.
inline void two_tap(cplx* x, std::size_t n, double a, double b) {
  for (std::size_t i = n; i-- > 0;) {
    const cplx prev = i > 0 ? x[i - 1] : cplx{0.0, 0.0};
    x[i] = cplx{(x[i].real() * a) + (prev.real() * b),
                (x[i].imag() * a) + (prev.imag() * b)};
  }
}

// Mirrors libstdc++ complex/=: numerators fl(fl(re*hr) + fl(im*hi)) and
// fl(fl(im*hr) - fl(re*hi)), each divided by fl(fl(hr*hr) + fl(hi*hi)).
inline void cdiv(cplx* x, std::size_t n, cplx h) {
  // Deliberately operator/= (the libgcc __divdc3 call, Smith-scaled): this
  // is exactly what the pre-kernel call sites compiled to, so the equalizer
  // keeps its legacy rounding. Division is branchy enough that no level
  // forks numerics to vectorize it — see the AVX2 table entry.
  for (std::size_t i = 0; i < n; ++i) x[i] /= h;
}

// 8-real-lane energy: component m (the flattened re/im stream) lands in
// lane m mod 8; fold is ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — the AVX2
// vertical A+B add followed by the 128-bit-half and pair folds. The
// acc/fold split lets the AVX2 TU spill its registers into `lane` and run
// this exact code for sub-vector tails.
inline void energy_acc(double lane[8], const double* d, std::size_t m) {
  std::size_t k = 0;
  for (; k + 8 <= m; k += 8) {
    for (std::size_t j = 0; j < 8; ++j) lane[j] += d[k + j] * d[k + j];
  }
  for (std::size_t j = 0; k < m; ++k, ++j) lane[j] += d[k] * d[k];
}

inline double energy_fold(const double lane[8]) {
  const double c0 = lane[0] + lane[4];
  const double c1 = lane[1] + lane[5];
  const double c2 = lane[2] + lane[6];
  const double c3 = lane[3] + lane[7];
  return (c0 + c2) + (c1 + c3);
}

inline double energy(const cplx* x, std::size_t n) {
  double lane[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  energy_acc(lane, reinterpret_cast<const double*>(x), 2 * n);
  return energy_fold(lane);
}

// 4-complex-lane conjugate dot product: sample i lands in lane i mod 4,
// each contribution is fl(fl(ar*br) + fl(ai*bi)) / fl(fl(ai*br) - fl(ar*bi));
// fold is (l0+l2) + (l1+l3) per component. Split as acc/fold for the same
// AVX2 tail-reuse reason as energy.
inline void dot_conj_acc(double lr[4], double li[4], const cplx* a,
                         const cplx* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i & 3;
    const double ar = a[i].real();
    const double ai = a[i].imag();
    const double br = b[i].real();
    const double bi = b[i].imag();
    lr[j] += (ar * br) + (ai * bi);
    li[j] += (ai * br) - (ar * bi);
  }
}

inline cplx dot_conj_fold(const double lr[4], const double li[4]) {
  return {(lr[0] + lr[2]) + (lr[1] + lr[3]),
          (li[0] + li[2]) + (li[1] + li[3])};
}

inline cplx dot_conj(const cplx* a, const cplx* b, std::size_t n) {
  double lr[4] = {0.0, 0.0, 0.0, 0.0};
  double li[4] = {0.0, 0.0, 0.0, 0.0};
  dot_conj_acc(lr, li, a, b, n);
  return dot_conj_fold(lr, li);
}

// Reference strip correlation: one independent dot_conj per offset. The
// AVX2 form restructures the register layout but keeps every offset's lane
// sums and fold identical, so the two agree bit for bit.
inline void corr_many(const cplx* a, const cplx* b, std::size_t n,
                      std::size_t m, cplx* out) {
  for (std::size_t s = 0; s < m; ++s) out[s] = dot_conj(a + s, b, n);
}

// One sample's contribution to the cumulant sums, with the exact rounding
// structure of the legacy estimate_cumulants() loop compiled without FMA:
//   x2  = x * x                 (libstdc++ complex multiply)
//   x4  = x2 * x2
//   u   = (x2 * x) * conj(x)    (left-associated multiply chain)
// expanded so shared products (re*re, im*im, re*im) are rounded once and
// reused, matching both the std::complex operators and the AVX2 lanes.
inline void cumulant_push(CumulantSums& s, cplx x) {
  const double re = x.real();
  const double im = x.imag();
  const double rr = re * re;
  const double ii = im * im;
  const double ri = re * im;
  const double abs2 = rr + ii;
  const double x2r = rr - ii;
  const double x2i = ri + ri;
  const double x4r = (x2r * x2r) - (x2i * x2i);
  const double x4i = (x2r * x2i) + (x2i * x2r);
  const double tr = (x2r * re) - (x2i * im);
  const double ti = (x2r * im) + (x2i * re);
  const double ur = (tr * re) + (ti * im);
  const double ui = (ti * re) - (tr * im);
  s.sum_x2 += cplx{x2r, x2i};
  s.sum_x4 += cplx{x4r, x4i};
  s.sum_x3_conj += cplx{ur, ui};
  s.sum_abs2 += abs2;
  s.sum_abs4 += abs2 * abs2;
}

inline void cumulant_acc(const cplx* x, std::size_t n, std::size_t start_index,
                         CumulantLanes* lanes) {
  for (std::size_t i = 0; i < n; ++i) {
    cumulant_push(lanes->lane[(start_index + i) & 3], x[i]);
  }
}

// Legacy OqpskDemodulator::soft_chips inner loop: one sequential
// accumulator per chip over the 2*spc pulse taps, I branch on even chips
// and Q on odd ones, normalized by the pulse energy.
inline void oqpsk_mf(const cplx* wave, std::size_t num_chips, std::size_t spc,
                     const double* pulse, std::size_t plen, double pulse_energy,
                     double* soft) {
  for (std::size_t i = 0; i < num_chips; ++i) {
    const std::size_t start = i * spc;
    const bool in_phase = (i % 2 == 0);
    double acc = 0.0;
    for (std::size_t s = 0; s < plen; ++s) {
      const cplx& value = wave[start + s];
      acc += (in_phase ? value.real() : value.imag()) * pulse[s];
    }
    soft[i] = acc / pulse_energy;
  }
}

inline void pack_hard_chips(const std::uint8_t* chips, std::size_t m,
                            std::uint32_t* out) {
  for (std::size_t k = 0; k < m; ++k) {
    std::uint32_t word = 0;
    for (std::uint32_t j = 0; j < 32; ++j) {
      if (chips[k * 32 + j] != 0) word |= (std::uint32_t{1} << j);
    }
    out[k] = word;
  }
}

inline void pack_sign_chips(const double* freq, std::size_t m,
                            std::uint32_t* out) {
  for (std::size_t k = 0; k < m; ++k) {
    std::uint32_t word = 0;
    for (std::uint32_t j = 0; j < 32; ++j) {
      if (freq[k * 32 + j] > 0.0) word |= (std::uint32_t{1} << j);
    }
    out[k] = word;
  }
}

// Strict-less update: ties keep the LOWEST symbol index, exactly like the
// legacy despread_block() loop.
inline void match16(std::uint32_t observed, const std::uint32_t* rows16,
                    std::uint32_t mask, std::uint8_t* symbol,
                    std::uint8_t* distance) {
  unsigned best_distance = 33;
  unsigned best_symbol = 0;
  for (unsigned row = 0; row < 16; ++row) {
    const auto dist = static_cast<unsigned>(
        std::popcount((observed ^ rows16[row]) & mask));
    if (dist < best_distance) {
      best_distance = dist;
      best_symbol = row;
    }
  }
  *symbol = static_cast<std::uint8_t>(best_symbol);
  *distance = static_cast<std::uint8_t>(best_distance);
}

inline void despread_words(const std::uint32_t* received, std::size_t m,
                           const std::uint32_t* rows16, std::uint32_t mask,
                           std::uint8_t* symbols, std::uint8_t* distances) {
  for (std::size_t k = 0; k < m; ++k) {
    match16(received[k], rows16, mask, &symbols[k], &distances[k]);
  }
}

}  // namespace ctc::dsp::kernels::scalar_impl
