// Private wiring between the dispatcher (kernels.cpp) and the per-level
// implementation TUs. Not installed; include only from src/dsp/kernels/.
#pragma once

#include "dsp/kernels/kernels.h"

namespace ctc::dsp::kernels::detail {

/// Portable reference table (kernels_scalar.cpp).
const KernelTable& scalar_table();

/// AVX2+FMA table (kernels_avx2.cpp). On non-x86-64 builds this TU is
/// compiled without intrinsics and returns false from avx2_compiled().
const KernelTable& avx2_table();
bool avx2_compiled();

}  // namespace ctc::dsp::kernels::detail
