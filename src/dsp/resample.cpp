#include "dsp/resample.h"

#include <cmath>

#include "dsp/fir.h"
#include "dsp/kernels/kernels.h"
#include "dsp/require.h"

namespace ctc::dsp {

cvec upsample(std::span<const cplx> input, std::size_t factor,
              std::size_t taps_per_phase) {
  CTC_REQUIRE(factor >= 1);
  if (factor == 1) return cvec(input.begin(), input.end());
  if (input.empty()) return {};
  // Zero-stuff.
  cvec stuffed(input.size() * factor, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < input.size(); ++i) stuffed[i * factor] = input[i];
  // Anti-imaging lowpass. Odd length for integer group delay.
  std::size_t num_taps = factor * taps_per_phase + 1;
  if (num_taps % 2 == 0) ++num_taps;
  const rvec taps = design_lowpass(0.5 / static_cast<double>(factor), num_taps);
  // Pinned direct: the emulator's slot LUT keys on the exact upsampled
  // samples, which relies on the direct form's bitwise time-invariance
  // (identical input slots -> identical output slots). The FFT path is only
  // ULP-equivalent and position-dependent, which would kill every LUT hit.
  cvec out = filter_same(stuffed, taps, ConvolvePolicy::direct);
  // Restore amplitude lost to zero-stuffing.
  kernels::active().rscale(out.data(), out.size(), static_cast<double>(factor));
  return out;
}

cvec decimate(std::span<const cplx> input, std::size_t factor,
              std::size_t taps_per_phase) {
  CTC_REQUIRE(factor >= 1);
  if (factor == 1) return cvec(input.begin(), input.end());
  if (input.empty()) return {};
  std::size_t num_taps = factor * taps_per_phase + 1;
  if (num_taps % 2 == 0) ++num_taps;
  const rvec taps = design_lowpass(0.5 / static_cast<double>(factor), num_taps);
  // Pinned direct for the same time-invariance reason as upsample(): the
  // decimated waveform flows into slot-keyed caches downstream.
  const cvec filtered = filter_same(input, taps, ConvolvePolicy::direct);
  cvec out;
  out.reserve((input.size() + factor - 1) / factor);
  for (std::size_t i = 0; i < filtered.size(); i += factor) out.push_back(filtered[i]);
  return out;
}

Mixer::Mixer(double freq_hz, double sample_rate_hz, double initial_phase)
    : step_(kTwoPi * freq_hz / sample_rate_hz), phase_(initial_phase) {
  CTC_REQUIRE(sample_rate_hz > 0.0);
}

cvec Mixer::process(std::span<const cplx> block) {
  cvec out(block.size());
  // The rotate kernel advances the exact phase recurrence at every dispatch
  // level, so mixer STATE is bitwise level-independent even though AVX2
  // samples come from a re-anchored phasor recurrence (tolerance class).
  phase_ = kernels::active().rotate(block.data(), block.size(), out.data(),
                                    phase_, step_);
  return out;
}

void Mixer::process_inplace(std::span<cplx> block) {
  phase_ = kernels::active().rotate(block.data(), block.size(), block.data(),
                                    phase_, step_);
}

void Mixer::reset(double phase) { phase_ = phase; }

cvec frequency_shift(std::span<const cplx> input, double freq_hz,
                     double sample_rate_hz) {
  Mixer mixer(freq_hz, sample_rate_hz);
  return mixer.process(input);
}

cvec fractional_delay(std::span<const cplx> input, double delay) {
  CTC_REQUIRE(delay >= -1.0 && delay <= 1.0);
  cvec out(input.size());
  const auto sample_at = [&](long index) {
    return (index >= 0 && index < static_cast<long>(input.size()))
               ? input[static_cast<std::size_t>(index)]
               : cplx{0.0, 0.0};
  };
  for (std::size_t n = 0; n < input.size(); ++n) {
    const double position = static_cast<double>(n) - delay;
    const double floor_position = std::floor(position);
    const auto base = static_cast<long>(floor_position);
    const double fraction = position - floor_position;
    out[n] = (1.0 - fraction) * sample_at(base) + fraction * sample_at(base + 1);
  }
  return out;
}

}  // namespace ctc::dsp
