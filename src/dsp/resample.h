// Sample-rate conversion and frequency shifting.
//
// The paper's attacker records the 2 MHz ZigBee waveform at a 4 MHz sample
// rate, then "interpolates the ZigBee waveform with parameter 5, creating 80
// points in each WiFi symbol duration" (Sec. V-B1). upsample() implements
// that interpolation; decimate() is the matching ZigBee-receiver front-end
// when listening inside a 20 MHz WiFi capture; Mixer implements the 5 MHz
// center-frequency offset between ZigBee channel 17 (2435 MHz) and the WiFi
// channel (2440 MHz).
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace ctc::dsp {

/// Integer upsampling by `factor`: zero-stuffing followed by an anti-imaging
/// lowpass (cutoff 0.5/factor of the output rate) with gain `factor`, with
/// filter group delay removed so output[i*factor] aligns with input[i].
/// `taps_per_phase` controls filter length (total taps ≈ factor*taps_per_phase).
cvec upsample(std::span<const cplx> input, std::size_t factor,
              std::size_t taps_per_phase = 12);

/// Integer decimation by `factor`: anti-alias lowpass (cutoff 0.5/factor)
/// then keep every factor-th sample, delay-compensated.
cvec decimate(std::span<const cplx> input, std::size_t factor,
              std::size_t taps_per_phase = 12);

/// Continuous-phase digital mixer: multiplies by exp(j*2*pi*freq_hz/fs * n).
/// Phase persists across process() calls so long captures stay coherent.
class Mixer {
 public:
  Mixer(double freq_hz, double sample_rate_hz, double initial_phase = 0.0);

  cvec process(std::span<const cplx> block);
  /// Same rotation applied in place — bit-identical to process().
  void process_inplace(std::span<cplx> block);
  void reset(double phase = 0.0);

  double phase() const { return phase_; }

 private:
  double step_;   // radians per sample
  double phase_;  // current phase in radians
};

/// One-shot frequency shift of a block starting at phase 0.
cvec frequency_shift(std::span<const cplx> input, double freq_hz,
                     double sample_rate_hz);

/// Fractional-sample delay in [-1, 1] via linear interpolation:
/// positive delay shifts the signal later (y[n] ~= x[n - delay]); negative
/// advances it. Samples interpolated past the ends use zero.
cvec fractional_delay(std::span<const cplx> input, double delay);

}  // namespace ctc::dsp
