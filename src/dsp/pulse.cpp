#include "dsp/pulse.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::dsp {

rvec half_sine_pulse(std::size_t samples_per_chip) {
  CTC_REQUIRE(samples_per_chip >= 1);
  const std::size_t n = 2 * samples_per_chip;
  rvec pulse(n);
  for (std::size_t i = 0; i < n; ++i) {
    pulse[i] = std::sin(kPi * static_cast<double>(i) / static_cast<double>(n));
  }
  return pulse;
}

}  // namespace ctc::dsp
