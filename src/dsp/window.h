// Window functions for FIR design and spectral analysis.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace ctc::dsp {

enum class WindowKind { rectangular, hann, hamming, blackman };

/// Returns an `n`-point symmetric window of the requested kind.
rvec make_window(WindowKind kind, std::size_t n);

}  // namespace ctc::dsp
