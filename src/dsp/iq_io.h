// IQ capture file I/O.
//
// Two formats:
//  * "cf32" — raw interleaved little-endian float32 I/Q, the format GNU
//    Radio file sinks/sources use (and what the paper's USRP captures would
//    be stored as), so captures from this library interoperate with SDR
//    tooling;
//  * CSV — "index,i,q" text for quick plotting.
#pragma once

#include <filesystem>
#include <span>

#include "dsp/types.h"

namespace ctc::dsp {

/// Writes raw interleaved float32 I/Q. Throws ctc::ContractError on I/O
/// failure.
void write_cf32(const std::filesystem::path& path, std::span<const cplx> samples);

/// Reads a whole cf32 file. Throws on I/O failure or odd float counts.
cvec read_cf32(const std::filesystem::path& path);

/// Writes "index,i,q" CSV with a header row.
void write_csv(const std::filesystem::path& path, std::span<const cplx> samples);

}  // namespace ctc::dsp
