// Half-sine pulse shaping for 802.15.4 OQPSK.
//
// Each chip is shaped with p(t) = sin(pi * t / (2 Tc)) over [0, 2 Tc]
// (two chip periods), which makes O-QPSK with half-chip offset equivalent to
// MSK. At `samples_per_chip` samples per chip the pulse spans
// 2*samples_per_chip samples.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace ctc::dsp {

/// Samples of the half-sine pulse: length 2*samples_per_chip, peak 1.0 at
/// the center. sample i corresponds to t = i / samples_per_chip * Tc.
rvec half_sine_pulse(std::size_t samples_per_chip);

}  // namespace ctc::dsp
