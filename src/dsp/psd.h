// Power spectral density estimation (Welch's method).
//
// Used by the spectrum bench to show the 2 MHz ZigBee channel sitting
// inside the 20 MHz WiFi band (the coexistence picture of the paper's
// Figs. 3-4), and generally useful for inspecting the waveforms this
// library produces.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"
#include "dsp/window.h"

namespace ctc::dsp {

struct PsdConfig {
  std::size_t segment_size = 256;   ///< power of two
  double overlap = 0.5;             ///< fraction of segment_size, in [0, 1)
  WindowKind window = WindowKind::hann;
  double sample_rate_hz = 1.0;      ///< scales the frequency axis only
};

struct PsdResult {
  rvec frequency_hz;  ///< bin centers, DC-centered (fftshifted), ascending
  rvec power;         ///< linear power per bin, same length
  std::size_t segments_used = 0;
};

/// Welch PSD of a complex baseband signal. Requires
/// signal.size() >= segment_size. Total power is normalized so that
/// sum(power) ~= mean |x|^2 (window-compensated).
PsdResult welch_psd(std::span<const cplx> signal, PsdConfig config = {});

/// Fraction of total power inside [low_hz, high_hz] (two-sided band edges
/// on the DC-centered axis).
double band_power_fraction(const PsdResult& psd, double low_hz, double high_hz);

}  // namespace ctc::dsp
