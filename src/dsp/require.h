// Contract checking for the ctc libraries.
//
// CTC_REQUIRE is used for preconditions on public APIs (programmer errors).
// Violations throw ctc::ContractError so tests can assert on them; expected
// data-dependent failures (sync miss, CRC failure, ...) never use this macro
// and are reported through return values instead.
#pragma once

#include <stdexcept>
#include <string>

namespace ctc {

/// Thrown when a documented precondition of a public API is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::string full = std::string("contract violation: (") + expr + ") at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw ContractError(full);
}
}  // namespace detail

}  // namespace ctc

#define CTC_REQUIRE(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::ctc::detail::contract_failure(#expr, __FILE__, __LINE__, {});  \
  } while (false)

#define CTC_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr))                                                         \
      ::ctc::detail::contract_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
