#include "dsp/fft.h"

#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dsp/require.h"

namespace ctc::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t size) : size_(size) {
  CTC_REQUIRE_MSG(is_power_of_two(size) && size >= 2,
                  "FFT size must be a power of two >= 2");
  // Bit-reversal permutation.
  bit_reverse_.resize(size_);
  std::size_t bits = 0;
  for (std::size_t probe = size_; probe > 1; probe >>= 1) ++bits;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t reversed = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) reversed |= std::size_t{1} << (bits - 1 - b);
    }
    bit_reverse_[i] = reversed;
  }
  // Forward twiddles exp(-j 2 pi k / N).
  twiddles_.resize(size_ / 2);
  for (std::size_t k = 0; k < size_ / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) / static_cast<double>(size_);
    twiddles_[k] = {std::cos(angle), std::sin(angle)};
  }
}

void FftPlan::transform(std::span<cplx> data, bool invert) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= size_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = size_ / len;
    for (std::size_t start = 0; start < size_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        cplx w = twiddles_[k * stride];
        if (invert) w = std::conj(w);
        const cplx even = data[start + k];
        const cplx odd = data[start + k + half] * w;
        data[start + k] = even + odd;
        data[start + k + half] = even - odd;
      }
    }
  }
  if (invert) {
    const double scale = 1.0 / static_cast<double>(size_);
    for (auto& value : data) value *= scale;
  }
}

cvec FftPlan::forward(std::span<const cplx> input) const {
  CTC_REQUIRE(input.size() == size_);
  cvec data(input.begin(), input.end());
  transform(data, /*invert=*/false);
  return data;
}

cvec FftPlan::inverse(std::span<const cplx> input) const {
  CTC_REQUIRE(input.size() == size_);
  cvec data(input.begin(), input.end());
  transform(data, /*invert=*/true);
  return data;
}

void FftPlan::forward_inplace(std::span<cplx> data) const {
  CTC_REQUIRE(data.size() == size_);
  transform(data, /*invert=*/false);
}

void FftPlan::inverse_inplace(std::span<cplx> data) const {
  CTC_REQUIRE(data.size() == size_);
  transform(data, /*invert=*/true);
}

void FftPlan::forward_into(cvec& out, std::span<const cplx> input) const {
  CTC_REQUIRE(input.size() == size_);
  out.assign(input.begin(), input.end());
  transform(out, /*invert=*/false);
}

void FftPlan::inverse_into(cvec& out, std::span<const cplx> input) const {
  CTC_REQUIRE(input.size() == size_);
  out.assign(input.begin(), input.end());
  transform(out, /*invert=*/true);
}

const FftPlan& shared_fft_plan(std::size_t size) {
  // Plans are immutable after construction, so concurrent users only need
  // the map itself serialized; node pointers stay stable across rehashing.
  static std::mutex mutex;
  static std::unordered_map<std::size_t, std::unique_ptr<FftPlan>> plans;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = plans.find(size);
  if (it == plans.end()) {
    it = plans.emplace(size, std::make_unique<FftPlan>(size)).first;
  }
  return *it->second;
}

std::size_t next_power_of_two(std::size_t n) {
  if (n <= 1) return 1;
  return std::size_t{1} << std::bit_width(n - 1);
}

cvec dft(std::span<const cplx> input) {
  const std::size_t n = input.size();
  cvec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double angle =
          -kTwoPi * static_cast<double>(k) * static_cast<double>(i) / static_cast<double>(n);
      acc += input[i] * cplx{std::cos(angle), std::sin(angle)};
    }
    out[k] = acc;
  }
  return out;
}

cvec idft(std::span<const cplx> input) {
  const std::size_t n = input.size();
  cvec out(n);
  for (std::size_t i = 0; i < n; ++i) {
    cplx acc{0.0, 0.0};
    for (std::size_t k = 0; k < n; ++k) {
      const double angle =
          kTwoPi * static_cast<double>(k) * static_cast<double>(i) / static_cast<double>(n);
      acc += input[k] * cplx{std::cos(angle), std::sin(angle)};
    }
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

cvec fftshift(std::span<const cplx> input) {
  const std::size_t n = input.size();
  cvec out(n);
  const std::size_t half = (n + 1) / 2;  // first element of the upper half
  for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
  return out;
}

cvec ifftshift(std::span<const cplx> input) {
  const std::size_t n = input.size();
  cvec out(n);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + half) % n];
  return out;
}

}  // namespace ctc::dsp
