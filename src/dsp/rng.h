// Deterministic random number generation for simulations.
//
// All randomness in the ctc libraries flows through ctc::dsp::Rng so that
// every experiment is reproducible from a printed seed. The generator is
// xoshiro256++ (public domain, Blackman & Vigna) seeded via SplitMix64, which
// avoids the zero-state and correlated-seed pitfalls of std::mt19937 seeding.
#pragma once

#include <array>
#include <cstdint>

#include "dsp/types.h"

namespace ctc::dsp {

/// Deterministic PRNG with convenience samplers for simulation use.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value (xoshiro256++).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal sample (Box–Muller, cached pair).
  double gaussian();

  /// Circularly-symmetric complex Gaussian with E|x|^2 == variance.
  cplx complex_gaussian(double variance = 1.0);

  /// Fair coin: 0 or 1.
  std::uint8_t bit();

  /// Forks an independent stream (used to give each simulated link its own
  /// noise source without coupling their consumption order).
  Rng fork();

  /// Derives the `stream_id`-th independent stream of a seed family.
  ///
  /// The (seed, stream_id) pair is hashed through SplitMix64 into a fresh
  /// 256-bit state, so streams are decorrelated even for adjacent ids and
  /// the result depends only on the pair — not on any generator that may
  /// already exist. This is what gives Monte Carlo trials scheduling-
  /// independent randomness: trial i always draws from
  /// `for_stream(seed, i)` no matter which thread runs it or in what order.
  ///
  /// Stream-ID scheme (the repo-wide convention, used by sim::TrialEngine):
  ///
  ///     stream_id = (run_index << 32) | trial_index
  ///
  /// The high 32 bits hold the engine's per-run counter (incremented every
  /// time run()/run_into() is called on an engine), the low 32 bits the
  /// trial index within that run. Consequences worth relying on:
  ///   * the k-th run of the j-th trial is addressable without knowing how
  ///     many draws earlier trials consumed — no sequence splitting;
  ///   * two benches with the same --seed replay identical randomness run
  ///     for run, which is what makes the CI determinism diff meaningful;
  ///   * a single engine supports up to 2^32 runs of 2^32 trials each
  ///     before ids could collide.
  /// Engine run counters start at 0, so the engine's very first run owns
  /// the plain ids 0..count-1. Anything deriving streams outside an engine
  /// (tests, ad-hoc tools) should therefore use its own seed, or fork()
  /// from an engine-provided generator, rather than hand-picking stream
  /// ids that an engine sharing the seed would also hand out.
  ///
  /// Sub-stream schemes layered on top of the engine scheme:
  ///   * sentry channels:  `for_stream(capture_seed, c)` for channel `c` —
  ///     safe because the sentry's capture seed is its own, never an
  ///     engine seed;
  ///   * mesh sensors:     each trial first draws
  ///     `sensor_seed = trial_rng.next_u64()` from its engine-provided
  ///     stream, then sensor `s` uses `for_stream(sensor_seed, s)`
  ///     (see mesh::SensorField). Because the per-sensor SEED is itself a
  ///     trial-unique draw — not the campaign seed — sensor ids can never
  ///     collide with engine run/trial ids or sentry channel ids, and the
  ///     whole sensor fan-out stays a pure function of
  ///     (seed, run_index, trial_index, sensor_id).
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Advances this generator by 2^128 steps (the xoshiro256++ jump
  /// polynomial). Calling jump() k times partitions one seed's sequence
  /// into k non-overlapping subsequences of 2^128 draws each.
  void jump();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace ctc::dsp
