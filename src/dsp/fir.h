// FIR filter design and application.
//
// The resampler (4 MHz ZigBee baseband <-> 20 MHz WiFi baseband) and the
// ZigBee receiver front-end (2 MHz channel filter inside the 20 MHz band)
// are built on windowed-sinc lowpass filters from this module.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"
#include "dsp/window.h"

namespace ctc::dsp {

/// Designs an odd-length linear-phase lowpass FIR via the windowed-sinc
/// method. `cutoff` is the -6 dB edge as a fraction of the sample rate,
/// in (0, 0.5). Taps are normalized to unity DC gain.
rvec design_lowpass(double cutoff, std::size_t num_taps,
                    WindowKind window = WindowKind::hamming);

/// Full convolution of `signal` with real `taps`
/// (output length = signal + taps - 1). Dispatches between the direct
/// time-domain form and FFT convolution based on use_fft_convolution();
/// both are deterministic, but the two paths differ in the last few ULPs
/// (floating-point summation order), so bit-exact consumers must pin one
/// path via convolve_direct()/convolve_fft().
cvec convolve(std::span<const cplx> signal, std::span<const double> taps);

/// O(n*t) time-domain convolution through the dispatched dsp::kernels
/// fir_mac (AVX2 gather with FMA when available). Exactly time-invariant at
/// every dispatch level: outputs with a full tap window depend only on the
/// window's sample values, never on position.
cvec convolve_direct(std::span<const cplx> signal, std::span<const double> taps);

/// Pinned pre-optimization scatter loop (the scalar kernel table); the
/// equivalence tests compare the dispatched direct and FFT paths against
/// this oracle.
cvec convolve_direct_reference(std::span<const cplx> signal,
                               std::span<const double> taps);

/// FFT convolution: zero-pad both operands to the next power of two >=
/// n + t - 1, multiply spectra, inverse transform. Uses the shared FftPlan
/// cache and thread-local scratch, so steady-state calls do not allocate.
cvec convolve_fft(std::span<const cplx> signal, std::span<const double> taps);

/// Crossover policy for convolve(): FFT wins once the direct form's
/// multiply-accumulate count n*t clears a threshold and the tap count is
/// non-trivial (short filters stay direct — their working set fits in
/// registers and the FFT's constant factor loses). The constants were tuned
/// with bench/perf_hotpath (see docs/PERFORMANCE.md).
bool use_fft_convolution(std::size_t signal_size, std::size_t taps_size);

/// Convolution path selection for callers that care about more than speed.
/// `automatic` applies use_fft_convolution(); `direct` pins the time-domain
/// form. Direct convolution is exactly time-invariant — identical input
/// segments produce bitwise-identical output segments — which downstream
/// memoization (the emulator's slot LUT) keys on; the FFT form is only
/// ULP-equivalent and position-dependent, so such callers must pin `direct`.
enum class ConvolvePolicy { automatic, direct, fft };

/// "Same"-length filtering: convolution trimmed so the output is aligned with
/// the input (group delay of (taps-1)/2 samples removed). Taps length must be
/// odd so the delay is an integer.
cvec filter_same(std::span<const cplx> signal, std::span<const double> taps,
                 ConvolvePolicy policy = ConvolvePolicy::automatic);

/// Streaming FIR filter with persistent state across process() calls.
/// Large blocks through long filters take the FFT convolution path (same
/// crossover policy as convolve()); short blocks stay in the direct form.
class FirFilter {
 public:
  explicit FirFilter(rvec taps);

  /// Filters a block, continuing from previous state (no delay compensation).
  cvec process(std::span<const cplx> block);

  /// Clears internal history.
  void reset();

  std::size_t num_taps() const { return taps_.size(); }

 private:
  rvec taps_;
  cvec history_;  // circular buffer of the last num_taps-1 inputs
  std::size_t pos_ = 0;
};

}  // namespace ctc::dsp
