// FIR filter design and application.
//
// The resampler (4 MHz ZigBee baseband <-> 20 MHz WiFi baseband) and the
// ZigBee receiver front-end (2 MHz channel filter inside the 20 MHz band)
// are built on windowed-sinc lowpass filters from this module.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"
#include "dsp/window.h"

namespace ctc::dsp {

/// Designs an odd-length linear-phase lowpass FIR via the windowed-sinc
/// method. `cutoff` is the -6 dB edge as a fraction of the sample rate,
/// in (0, 0.5). Taps are normalized to unity DC gain.
rvec design_lowpass(double cutoff, std::size_t num_taps,
                    WindowKind window = WindowKind::hamming);

/// Full convolution of `signal` with real `taps`
/// (output length = signal + taps - 1).
cvec convolve(std::span<const cplx> signal, std::span<const double> taps);

/// "Same"-length filtering: convolution trimmed so the output is aligned with
/// the input (group delay of (taps-1)/2 samples removed). Taps length must be
/// odd so the delay is an integer.
cvec filter_same(std::span<const cplx> signal, std::span<const double> taps);

/// Streaming FIR filter with persistent state across process() calls.
class FirFilter {
 public:
  explicit FirFilter(rvec taps);

  /// Filters a block, continuing from previous state (no delay compensation).
  cvec process(std::span<const cplx> block);

  /// Clears internal history.
  void reset();

  std::size_t num_taps() const { return taps_.size(); }

 private:
  rvec taps_;
  cvec history_;  // circular buffer of the last num_taps-1 inputs
  std::size_t pos_ = 0;
};

}  // namespace ctc::dsp
