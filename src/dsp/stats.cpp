#include "dsp/stats.h"

#include <cmath>

#include "dsp/kernels/kernels.h"
#include "dsp/require.h"

namespace ctc::dsp {

double mean(std::span<const double> values) {
  CTC_REQUIRE(!values.empty());
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double average_power(std::span<const cplx> signal) {
  CTC_REQUIRE(!signal.empty());
  return energy(signal) / static_cast<double>(signal.size());
}

double energy(std::span<const cplx> signal) {
  // Lane-structured reduction (see kernels.h): bitwise identical across
  // dispatch levels, a fixed but different summation order than a naive
  // sequential accumulator.
  return kernels::active().energy(signal.data(), signal.size());
}

cvec normalize_power(std::span<const cplx> signal) {
  const double p = average_power(signal);
  CTC_REQUIRE_MSG(p > 0.0, "cannot normalize an all-zero signal");
  const double scale = 1.0 / std::sqrt(p);
  cvec out(signal.begin(), signal.end());
  kernels::active().rscale(out.data(), out.size(), scale);
  return out;
}

double nmse(std::span<const cplx> reference, std::span<const cplx> test) {
  CTC_REQUIRE(reference.size() == test.size());
  const double ref_energy = energy(reference);
  CTC_REQUIRE_MSG(ref_energy > 0.0, "reference has zero energy");
  double err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    err += std::norm(reference[i] - test[i]);
  }
  return err / ref_energy;
}

double evm_rms(std::span<const cplx> ideal, std::span<const cplx> received) {
  CTC_REQUIRE(ideal.size() == received.size());
  CTC_REQUIRE(!ideal.empty());
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    err += std::norm(received[i] - ideal[i]);
    ref += std::norm(ideal[i]);
  }
  CTC_REQUIRE(ref > 0.0);
  return std::sqrt(err / ref);
}

double to_db(double linear) {
  CTC_REQUIRE(linear > 0.0);
  return 10.0 * std::log10(linear);
}

double from_db(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace ctc::dsp
