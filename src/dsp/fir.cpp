#include "dsp/fir.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::dsp {

rvec design_lowpass(double cutoff, std::size_t num_taps, WindowKind window) {
  CTC_REQUIRE_MSG(cutoff > 0.0 && cutoff < 0.5,
                  "cutoff must be a fraction of the sample rate in (0, 0.5)");
  CTC_REQUIRE_MSG(num_taps % 2 == 1 && num_taps >= 3,
                  "need an odd tap count for integer group delay");
  const rvec w = make_window(window, num_taps);
  rvec taps(num_taps);
  const double center = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double x = kTwoPi * cutoff * t;
    const double sinc = (std::abs(t) < 1e-12) ? 1.0 : std::sin(x) / x;
    taps[i] = 2.0 * cutoff * sinc * w[i];
    sum += taps[i];
  }
  for (auto& tap : taps) tap /= sum;  // unity DC gain
  return taps;
}

cvec convolve(std::span<const cplx> signal, std::span<const double> taps) {
  CTC_REQUIRE(!taps.empty());
  if (signal.empty()) return {};
  cvec out(signal.size() + taps.size() - 1, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) {
    for (std::size_t j = 0; j < taps.size(); ++j) {
      out[i + j] += signal[i] * taps[j];
    }
  }
  return out;
}

cvec filter_same(std::span<const cplx> signal, std::span<const double> taps) {
  CTC_REQUIRE(taps.size() % 2 == 1);
  const cvec full = convolve(signal, taps);
  const std::size_t delay = (taps.size() - 1) / 2;
  cvec out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = full[i + delay];
  return out;
}

FirFilter::FirFilter(rvec taps) : taps_(std::move(taps)) {
  CTC_REQUIRE(!taps_.empty());
  history_.assign(taps_.size() > 1 ? taps_.size() - 1 : 1, cplx{0.0, 0.0});
}

cvec FirFilter::process(std::span<const cplx> block) {
  cvec out(block.size());
  const std::size_t hist = taps_.size() - 1;
  for (std::size_t i = 0; i < block.size(); ++i) {
    cplx acc = block[i] * taps_[0];
    for (std::size_t j = 1; j <= hist; ++j) {
      // history_[(pos_ + hist - j) % hist] holds input[i - j] for j <= i.
      const cplx past = (j <= i) ? block[i - j]
                                 : history_[(pos_ + 2 * hist - (j - i)) % hist];
      acc += past * taps_[j];
    }
    out[i] = acc;
  }
  // Update history with the tail of this block.
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (hist == 0) break;
    history_[pos_] = block[i];
    pos_ = (pos_ + 1) % hist;
  }
  return out;
}

void FirFilter::reset() {
  for (auto& value : history_) value = cplx{0.0, 0.0};
  pos_ = 0;
}

}  // namespace ctc::dsp
