#include "dsp/fir.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "dsp/kernels/kernels.h"
#include "dsp/require.h"

namespace ctc::dsp {

rvec design_lowpass(double cutoff, std::size_t num_taps, WindowKind window) {
  CTC_REQUIRE_MSG(cutoff > 0.0 && cutoff < 0.5,
                  "cutoff must be a fraction of the sample rate in (0, 0.5)");
  CTC_REQUIRE_MSG(num_taps % 2 == 1 && num_taps >= 3,
                  "need an odd tap count for integer group delay");
  const rvec w = make_window(window, num_taps);
  rvec taps(num_taps);
  const double center = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double x = kTwoPi * cutoff * t;
    const double sinc = (std::abs(t) < 1e-12) ? 1.0 : std::sin(x) / x;
    taps[i] = 2.0 * cutoff * sinc * w[i];
    sum += taps[i];
  }
  for (auto& tap : taps) tap /= sum;  // unity DC gain
  return taps;
}

cvec convolve_direct(std::span<const cplx> signal, std::span<const double> taps) {
  CTC_REQUIRE(!taps.empty());
  if (signal.empty()) return {};
  cvec out(signal.size() + taps.size() - 1, cplx{0.0, 0.0});
  kernels::active().fir_mac(signal.data(), signal.size(), taps.data(),
                            taps.size(), out.data());
  return out;
}

cvec convolve_direct_reference(std::span<const cplx> signal,
                               std::span<const double> taps) {
  CTC_REQUIRE(!taps.empty());
  if (signal.empty()) return {};
  cvec out(signal.size() + taps.size() - 1, cplx{0.0, 0.0});
  kernels::table(kernels::SimdLevel::scalar)
      .fir_mac(signal.data(), signal.size(), taps.data(), taps.size(),
               out.data());
  return out;
}

bool use_fft_convolution(std::size_t signal_size, std::size_t taps_size) {
  // Measured with bench/perf_hotpath (Release, this FftPlan): the direct
  // form's real-taps MAC loop vectorizes to ~0.5 ns per tap-sample, so FFT
  // only breaks even near 800 taps and wins decisively past ~2k (7x at
  // n=8192, t=4097). Short filters — everything in the per-trial receive
  // path — stay direct.
  return taps_size >= 768 && signal_size * taps_size >= (std::size_t{1} << 21);
}

cvec convolve_fft(std::span<const cplx> signal, std::span<const double> taps) {
  CTC_REQUIRE(!taps.empty());
  if (signal.empty()) return {};
  const std::size_t out_size = signal.size() + taps.size() - 1;
  const std::size_t fft_size = std::max<std::size_t>(2, next_power_of_two(out_size));
  const FftPlan& plan = shared_fft_plan(fft_size);
  // Thread-local scratch: zero per-call allocation once the buffers have
  // grown to the workload's high-water mark.
  thread_local cvec padded_signal;
  thread_local cvec padded_taps;
  padded_signal.assign(fft_size, cplx{0.0, 0.0});
  std::copy(signal.begin(), signal.end(), padded_signal.begin());
  padded_taps.assign(fft_size, cplx{0.0, 0.0});
  for (std::size_t j = 0; j < taps.size(); ++j) {
    padded_taps[j] = cplx{taps[j], 0.0};
  }
  plan.forward_inplace(padded_signal);
  plan.forward_inplace(padded_taps);
  kernels::active().cmul(padded_signal.data(), padded_taps.data(), fft_size);
  plan.inverse_inplace(padded_signal);
  return cvec(padded_signal.begin(),
              padded_signal.begin() + static_cast<std::ptrdiff_t>(out_size));
}

cvec convolve(std::span<const cplx> signal, std::span<const double> taps) {
  if (use_fft_convolution(signal.size(), taps.size())) {
    return convolve_fft(signal, taps);
  }
  return convolve_direct(signal, taps);
}

cvec filter_same(std::span<const cplx> signal, std::span<const double> taps,
                 ConvolvePolicy policy) {
  CTC_REQUIRE(taps.size() % 2 == 1);
  const cvec full = policy == ConvolvePolicy::direct ? convolve_direct(signal, taps)
                    : policy == ConvolvePolicy::fft  ? convolve_fft(signal, taps)
                                                     : convolve(signal, taps);
  const std::size_t delay = (taps.size() - 1) / 2;
  cvec out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = full[i + delay];
  return out;
}

FirFilter::FirFilter(rvec taps) : taps_(std::move(taps)) {
  CTC_REQUIRE(!taps_.empty());
  history_.assign(taps_.size() > 1 ? taps_.size() - 1 : 1, cplx{0.0, 0.0});
}

cvec FirFilter::process(std::span<const cplx> block) {
  const std::size_t hist = taps_.size() - 1;
  if (use_fft_convolution(block.size() + hist, taps_.size())) {
    // Linearize the circular history (oldest first), convolve once, and keep
    // the block-aligned slice: full[hist + i] == sum_j taps[j] * x[i - j],
    // exactly the direct form's output sample (up to FFT rounding).
    cvec extended;
    extended.reserve(hist + block.size());
    for (std::size_t k = 0; k < hist; ++k) {
      extended.push_back(history_[(pos_ + k) % hist]);
    }
    extended.insert(extended.end(), block.begin(), block.end());
    const cvec full = convolve_fft(extended, taps_);
    cvec out(full.begin() + static_cast<std::ptrdiff_t>(hist),
             full.begin() + static_cast<std::ptrdiff_t>(hist + block.size()));
    for (std::size_t i = 0; i < block.size(); ++i) {
      history_[pos_] = block[i];
      pos_ = (pos_ + 1) % hist;
    }
    return out;
  }
  cvec out(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    cplx acc = block[i] * taps_[0];
    for (std::size_t j = 1; j <= hist; ++j) {
      // history_[(pos_ + hist - j) % hist] holds input[i - j] for j <= i.
      const cplx past = (j <= i) ? block[i - j]
                                 : history_[(pos_ + 2 * hist - (j - i)) % hist];
      acc += past * taps_[j];
    }
    out[i] = acc;
  }
  // Update history with the tail of this block.
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (hist == 0) break;
    history_[pos_] = block[i];
    pos_ = (pos_ + 1) % hist;
  }
  return out;
}

void FirFilter::reset() {
  for (auto& value : history_) value = cplx{0.0, 0.0};
  pos_ = 0;
}

}  // namespace ctc::dsp
