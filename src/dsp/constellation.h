// Constellation generation and nearest-point quantization.
//
// Used three ways in this reproduction:
//  * the attack's 64-QAM quantization of chosen frequency points (Sec. V-A3),
//  * Gray bit mapping inside the 802.11g modulator,
//  * Monte-Carlo validation of the theoretical cumulant table (Table III),
//    which needs PSK/PAM/QAM generators of many orders.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.h"

namespace ctc::dsp {

/// M-PSK points exp(j*2*pi*k/M), k = 0..M-1 (axis-aligned for M=4:
/// {1, j, -1, -j}, the Swami–Sadler convention used by Table III).
cvec make_psk(std::size_t order);

/// M-PAM points {±1, ±3, ...} on the real axis, unit average power.
cvec make_pam(std::size_t order);

/// Square M-QAM grid (M a perfect square of a power of two), levels
/// {±1, ±3, ...} in both axes, unit average power. Point order follows
/// Gray-coded axes: index = gray(row) * sqrt(M) + gray(col) is NOT applied
/// here; this is the plain grid, bit mapping lives in wifi::Qam.
cvec make_qam(std::size_t order);

/// Unnormalized 64-QAM levels {±1,±3,±5,±7} x {±1,±3,±5,±7} exactly as in
/// Eq. (3) of the paper: X = alpha * (XI + j XQ). Unit alpha.
cvec make_qam64_raw();

/// Index of the constellation point nearest to `x` in Euclidean distance.
/// Ties resolve to the lowest index. Requires a non-empty constellation.
std::size_t nearest_point(std::span<const cplx> constellation, cplx x);

/// Quantizes every sample to its nearest constellation point.
cvec quantize(std::span<const cplx> constellation, std::span<const cplx> samples);

}  // namespace ctc::dsp
