// Signal statistics: power, SNR scaling, waveform-distortion metrics.
#pragma once

#include <span>

#include "dsp/types.h"

namespace ctc::dsp {

/// Mean of real samples. Requires non-empty input.
double mean(std::span<const double> values);

/// Sample variance (biased, 1/N) of real samples.
double variance(std::span<const double> values);

/// Average power E|x|^2 of a complex block. Requires non-empty input.
double average_power(std::span<const cplx> signal);

/// Total energy sum |x|^2.
double energy(std::span<const cplx> signal);

/// Scales a copy of `signal` to unit average power. Requires nonzero power.
cvec normalize_power(std::span<const cplx> signal);

/// Normalized mean squared error between a reference and a test waveform:
/// sum|ref - test|^2 / sum|ref|^2. Sizes must match; reference must have
/// nonzero energy.
double nmse(std::span<const cplx> reference, std::span<const cplx> test);

/// Error vector magnitude (rms) between received points and their ideal
/// constellation points, as a fraction of the ideal rms magnitude.
double evm_rms(std::span<const cplx> ideal, std::span<const cplx> received);

/// Converts a linear power ratio to dB and back.
double to_db(double linear);
double from_db(double db);

}  // namespace ctc::dsp
