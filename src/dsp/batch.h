// Structure-of-arrays batch workspace for multi-trial DSP pipelines.
//
// A batched trial processes B independent realizations of the same frame:
// the waveform is one row per trial, and every channel stage sweeps all
// rows before the next stage runs (stage-major order). The rows live in
// one contiguous rows x stride allocation so the sweep is a single linear
// pass — cache-friendly and free of per-trial allocations.
//
// BatchView is the non-owning window stages operate through; BatchBuffer
// owns the storage and is designed to be kept thread_local by hot loops
// (reset() only reallocates when the batch outgrows the old one).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/require.h"
#include "dsp/types.h"

namespace ctc::dsp {

/// Non-owning view over `rows` equal-length complex rows laid out
/// contiguously with spacing `stride`. Row r occupies
/// [data + r*stride, data + r*stride + stride).
class BatchView {
 public:
  BatchView() = default;
  BatchView(cplx* data, std::size_t rows, std::size_t stride)
      : data_(data), rows_(rows), stride_(stride) {}

  std::size_t rows() const { return rows_; }
  /// Row length == spacing; rows are dense.
  std::size_t stride() const { return stride_; }

  std::span<cplx> row(std::size_t r) const {
    CTC_REQUIRE(r < rows_);
    return {data_ + r * stride_, stride_};
  }

 private:
  cplx* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t stride_ = 0;
};

/// Owning SoA batch storage. reset() reshapes without shrinking the
/// underlying allocation, so a thread_local BatchBuffer reaches a steady
/// state with zero allocations per batch.
class BatchBuffer {
 public:
  /// Reshapes to rows x stride. Contents are unspecified afterwards
  /// (callers fill every row they read).
  void reset(std::size_t rows, std::size_t stride) {
    rows_ = rows;
    stride_ = stride;
    storage_.resize(rows * stride);
  }

  std::size_t rows() const { return rows_; }
  std::size_t stride() const { return stride_; }

  std::span<cplx> row(std::size_t r) {
    CTC_REQUIRE(r < rows_);
    return {storage_.data() + r * stride_, stride_};
  }
  std::span<const cplx> row(std::size_t r) const {
    CTC_REQUIRE(r < rows_);
    return {storage_.data() + r * stride_, stride_};
  }

  BatchView view() { return BatchView(storage_.data(), rows_, stride_); }

 private:
  std::vector<cplx> storage_;
  std::size_t rows_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace ctc::dsp
