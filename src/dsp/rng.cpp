#include "dsp/rng.h"

#include <cmath>

#include "dsp/require.h"

namespace ctc::dsp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CTC_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CTC_REQUIRE(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return value % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = radius * std::sin(kTwoPi * u2);
  has_cached_gaussian_ = true;
  return radius * std::cos(kTwoPi * u2);
}

cplx Rng::complex_gaussian(double variance) {
  CTC_REQUIRE(variance >= 0.0);
  const double scale = std::sqrt(variance / 2.0);
  return {scale * gaussian(), scale * gaussian()};
}

std::uint8_t Rng::bit() { return static_cast<std::uint8_t>(next_u64() >> 63); }

Rng Rng::fork() {
  Rng child(next_u64());
  return child;
}

Rng Rng::for_stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Whiten the seed first so that for_stream(s, i) never coincides with the
  // plain Rng(s + i) family, then fold in the stream id with an odd
  // multiplier to spread adjacent ids across the SplitMix64 input space.
  std::uint64_t x = seed;
  const std::uint64_t whitened = splitmix64(x);
  x = whitened ^ (stream_id * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL);
  Rng rng;
  for (auto& word : rng.state_) word = splitmix64(x);
  rng.has_cached_gaussian_ = false;
  return rng;
}

void Rng::jump() {
  // Official xoshiro256++ jump polynomial (Blackman & Vigna): advances the
  // state by 2^128 steps without generating the intermediate outputs.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> accum{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < accum.size(); ++i) accum[i] ^= state_[i];
      }
      next_u64();
    }
  }
  state_ = accum;
  has_cached_gaussian_ = false;
}

}  // namespace ctc::dsp
