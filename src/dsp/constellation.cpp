#include "dsp/constellation.h"

#include <cmath>
#include <limits>

#include "dsp/require.h"
#include "dsp/stats.h"

namespace ctc::dsp {

cvec make_psk(std::size_t order) {
  CTC_REQUIRE(order >= 2);
  cvec points(order);
  for (std::size_t k = 0; k < order; ++k) {
    const double angle = kTwoPi * static_cast<double>(k) / static_cast<double>(order);
    points[k] = {std::cos(angle), std::sin(angle)};
  }
  return points;
}

cvec make_pam(std::size_t order) {
  CTC_REQUIRE(order >= 2 && order % 2 == 0);
  cvec points(order);
  for (std::size_t k = 0; k < order; ++k) {
    points[k] = {static_cast<double>(2 * k + 1) - static_cast<double>(order), 0.0};
  }
  const double p = average_power(points);
  for (auto& x : points) x /= std::sqrt(p);
  return points;
}

cvec make_qam(std::size_t order) {
  const auto side = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(order))));
  CTC_REQUIRE_MSG(side * side == order && side >= 2,
                  "QAM order must be a perfect square >= 4");
  cvec points;
  points.reserve(order);
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      const double in_phase = static_cast<double>(2 * col + 1) - static_cast<double>(side);
      const double quadrature = static_cast<double>(2 * row + 1) - static_cast<double>(side);
      points.emplace_back(in_phase, quadrature);
    }
  }
  const double p = average_power(points);
  for (auto& x : points) x /= std::sqrt(p);
  return points;
}

cvec make_qam64_raw() {
  cvec points;
  points.reserve(64);
  for (int q = -7; q <= 7; q += 2) {
    for (int i = -7; i <= 7; i += 2) {
      points.emplace_back(static_cast<double>(i), static_cast<double>(q));
    }
  }
  return points;
}

std::size_t nearest_point(std::span<const cplx> constellation, cplx x) {
  CTC_REQUIRE(!constellation.empty());
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < constellation.size(); ++i) {
    const double distance = std::norm(x - constellation[i]);
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

cvec quantize(std::span<const cplx> constellation, std::span<const cplx> samples) {
  cvec out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i] = constellation[nearest_point(constellation, samples[i])];
  }
  return out;
}

}  // namespace ctc::dsp
