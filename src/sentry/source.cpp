#include "sentry/source.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "dsp/iq_io.h"
#include "dsp/require.h"

namespace ctc::sentry {

// -- ReplaySource -----------------------------------------------------------

ReplaySource::ReplaySource(cvec samples, std::size_t repeat)
    : samples_(std::move(samples)), repeat_(repeat) {
  CTC_REQUIRE(repeat_ >= 1);
}

std::unique_ptr<ReplaySource> ReplaySource::from_file(
    const std::filesystem::path& path, std::size_t repeat) {
  return std::make_unique<ReplaySource>(dsp::read_cf32(path), repeat);
}

std::size_t ReplaySource::next_block(std::span<cplx> out) {
  std::size_t written = 0;
  while (written < out.size() && pass_ < repeat_) {
    if (position_ == samples_.size()) {
      position_ = 0;
      ++pass_;
      continue;
    }
    const std::size_t take =
        std::min(out.size() - written, samples_.size() - position_);
    std::copy_n(samples_.begin() + static_cast<std::ptrdiff_t>(position_),
                take, out.begin() + static_cast<std::ptrdiff_t>(written));
    position_ += take;
    written += take;
  }
  return written;
}

// -- LinkSource -------------------------------------------------------------

namespace {

sim::LinkConfig link_config_for(const LinkSourceConfig& config,
                                sim::LinkKind kind) {
  sim::LinkConfig link;
  link.kind = kind;
  link.environment = config.environment;
  link.emulator = config.emulator;
  return link;
}

/// Frame content cycles through 8 variants so the links' waveform caches
/// stay bounded no matter how long the stream runs.
zigbee::MacFrame frame_variant(const LinkSourceConfig& config,
                               std::size_t frame_number) {
  zigbee::MacFrame frame;
  frame.sequence = static_cast<std::uint8_t>(frame_number % 8);
  frame.payload.resize(config.payload_bytes);
  for (std::size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] =
        static_cast<std::uint8_t>((frame.sequence * 29 + i * 7 + 3) & 0xFF);
  }
  return frame;
}

}  // namespace

LinkSource::LinkSource(LinkSourceConfig config, std::size_t channel)
    : config_(config),
      authentic_(link_config_for(config, sim::LinkKind::authentic)),
      emulated_(link_config_for(config, sim::LinkKind::emulated)),
      rng_(dsp::Rng::for_stream(config.seed, channel)) {
  CTC_REQUIRE(config_.payload_bytes <= zigbee::kMaxPsduBytes - 11);
}

bool LinkSource::is_attack_frame(const LinkSourceConfig& config,
                                 std::size_t frame_number) {
  return config.attack_every != 0 && frame_number % config.attack_every == 0;
}

void LinkSource::synthesize_next() {
  const std::size_t frame_number = frames_emitted_ + 1;  // 1-based
  const zigbee::MacFrame frame = frame_variant(config_, frame_number);
  const sim::Link& link =
      is_attack_frame(config_, frame_number) ? emulated_ : authentic_;
  pending_ = link.config().environment.propagate(link.clean_waveform(frame),
                                                 rng_);
  pending_.resize(pending_.size() + config_.gap_samples, cplx{0.0, 0.0});
  pending_position_ = 0;
  ++frames_emitted_;
}

std::size_t LinkSource::next_block(std::span<cplx> out) {
  std::size_t written = 0;
  while (written < out.size()) {
    if (pending_position_ == pending_.size()) {
      if (frames_emitted_ >= config_.frames) break;
      synthesize_next();
    }
    const std::size_t take =
        std::min(out.size() - written, pending_.size() - pending_position_);
    std::copy_n(
        pending_.begin() + static_cast<std::ptrdiff_t>(pending_position_),
        take, out.begin() + static_cast<std::ptrdiff_t>(written));
    pending_position_ += take;
    written += take;
  }
  return written;
}

// -- RateLimitedSource ------------------------------------------------------

RateLimitedSource::RateLimitedSource(std::unique_ptr<SampleSource> inner,
                                     double samples_per_second)
    : inner_(std::move(inner)), rate_(samples_per_second) {
  CTC_REQUIRE(inner_ != nullptr);
  CTC_REQUIRE(rate_ > 0.0);
}

std::size_t RateLimitedSource::next_block(std::span<cplx> out) {
  const std::size_t written = inner_->next_block(out);
  if (written == 0) return 0;
  if (!start_) start_ = std::chrono::steady_clock::now();
  released_ += written;
  // Absolute deadline from the stream start, so pacing error never
  // accumulates across blocks.
  const auto deadline =
      *start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(released_) / rate_));
  std::this_thread::sleep_until(deadline);
  return written;
}

}  // namespace ctc::sentry
