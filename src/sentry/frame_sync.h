// Online frame synchronization + per-frame detection over a continuous
// IQ stream.
//
// The batch pipeline hands zigbee::Receiver a waveform whose sample 0 is a
// frame start; a deployed monitor sees an endless stream with frames at
// unknown positions, gaps, noise, and possibly truncated tails. The
// StreamScanner closes that gap: it buffers pushed sample blocks, searches
// fixed-size scan rounds for an SHR correlation peak (normalized metric,
// same 0.25 threshold as zigbee::Receiver::synchronize, with a sliding
// prefix-sum energy term so the search is O(window) per offset instead of
// O(window^2)), decodes each detected frame with the full receiver, feeds
// the discriminator chips to a defense::StreamingDetector, and emits one
// VerdictRecord per decoded frame through a callback.
//
// Determinism contract (the service's replay gate rests on it): the
// scanner's decisions depend only on the sample values and their absolute
// stream positions — never on how the stream was partitioned into push()
// calls. Scan rounds fire at fixed stream offsets once enough samples are
// buffered, so pushing one sample at a time and pushing the whole capture
// at once produce byte-identical verdict streams (pinned by
// tests/sentry/frame_sync_test.cpp).
//
// Latency is bounded by construction: a verdict is emitted no later than
// `frame_need()` samples after the frame's first sample entered the
// scanner (the lookahead that guarantees a maximum-size PPDU is fully
// buffered), plus whatever the caller's block size adds.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "defense/streaming.h"
#include "dsp/types.h"
#include "sentry/verdict.h"
#include "zigbee/receiver.h"

namespace ctc::sentry {

/// Which receiver tap feeds the streaming detector.
enum class ScanTap {
  discriminator,  ///< FM-discriminator frequency chips (the paper's tap)
  coherent,       ///< matched-filter soft chips
};

struct ScannerConfig {
  zigbee::ReceiverConfig receiver;
  defense::DetectorConfig detector;
  ScanTap tap = ScanTap::discriminator;
  /// Candidate frame-start offsets searched per scan round. Larger rounds
  /// amortize bookkeeping; smaller rounds shrink buffered lookahead.
  std::size_t scan_span = 2048;
  /// Largest PSDU the scanner waits for before decoding a detected frame —
  /// the bounded-latency knob. Streams with larger frames decode truncated
  /// (phr fails, frame skipped); 127 accepts anything 802.15.4 allows.
  std::size_t max_psdu_bytes = zigbee::kMaxPsduBytes;
  /// Normalized SHR correlation acceptance threshold in [0, 1].
  double sync_threshold = 0.25;
  /// Windows whose energy falls below this are skipped without running the
  /// correlation — an exact-zero gap (idle air in generated streams) costs
  /// one prefix-sum subtraction per offset instead of a 640-sample dot.
  double energy_gate = 1e-12;
  /// Minimum constellation points for a valid verdict (forwarded to
  /// defense::StreamingDetector::verdict).
  std::size_t min_points = 4;
};

/// Monotonic per-channel progress counters (plain integers: the scanner is
/// single-threaded; the service aggregates across channels separately).
struct ScannerStats {
  std::uint64_t samples_in = 0;       ///< samples pushed
  std::uint64_t samples_consumed = 0; ///< samples retired from the buffer
  std::uint64_t scan_rounds = 0;      ///< sync searches run
  std::uint64_t sync_misses = 0;      ///< rounds with no acceptable peak
  std::uint64_t frames_detected = 0;  ///< accepted correlation peaks
  std::uint64_t frames_decoded = 0;   ///< detected frames with a valid PHR
  std::uint64_t frames_ok = 0;        ///< decoded frames passing CRC etc.
  std::uint64_t verdicts = 0;         ///< VerdictRecords emitted
  std::uint64_t verdicts_attack = 0;  ///< records with is_attack == true
};

class StreamScanner {
 public:
  using VerdictFn = std::function<void(const VerdictRecord&)>;

  StreamScanner(ScannerConfig config, std::size_t channel, VerdictFn on_verdict);

  /// Appends a block and processes every scan round it completes.
  /// `queue_depth` and `dropped_so_far` are ingest-side context stamped
  /// into any verdict this block completes (pass 0 when not applicable).
  void push(std::span<const cplx> samples, std::size_t queue_depth = 0,
            std::uint64_t dropped_so_far = 0);

  /// Stream end: processes the buffered remainder, allowing partial scan
  /// rounds and truncated frame decodes.
  void flush();

  const ScannerStats& stats() const { return stats_; }
  const ScannerConfig& config() const { return config_; }

  /// Samples buffered but not yet retired (the scanner's lookahead).
  std::size_t buffered() const { return avail(); }

  /// Samples a serialized PPDU with `psdu_bytes` of payload occupies
  /// ((symbols * 32 chips + 1) * samples_per_chip — the O-QPSK pulse tail
  /// adds one chip period).
  static std::size_t ppdu_samples(std::size_t psdu_bytes,
                                  std::size_t samples_per_chip);

  /// The scanner's bounded lookahead: samples that must be buffered past a
  /// detected frame start before the decode runs.
  std::size_t frame_need() const { return frame_need_; }

  /// SHR correlation window length in samples.
  std::size_t sync_window() const { return window_; }

 private:
  void advance(bool flushing);
  /// One scan round over the buffered stream; returns true when the round
  /// consumed samples or detected a frame (i.e. progress was made).
  bool scan_round(bool flushing);
  void decode_at(std::size_t offset);
  void consume(std::size_t count);

  const cplx* data() const { return buffer_.data() + start_; }
  std::size_t avail() const { return buffer_.size() - start_; }

  ScannerConfig config_;
  std::size_t channel_ = 0;
  VerdictFn on_verdict_;
  zigbee::Receiver receiver_;
  defense::StreamingDetector detector_;
  cvec shr_reference_;
  double reference_energy_ = 0.0;
  std::size_t window_ = 0;      ///< SHR samples
  std::size_t frame_need_ = 0;  ///< max PPDU samples (lookahead bound)
  /// Preamble-structure screen: the SHR's eight preamble symbols repeat the
  /// same sample block (symbol period seg_len_), so symbols 1..7 of the
  /// reference are bitwise-identical segments. A scan round correlates the
  /// stream against that ONE segment at every strip offset (corr_many) and
  /// combines the per-segment magnitudes into a rigorous upper bound on the
  /// full-window correlation (triangle inequality across segments +
  /// Cauchy-Schwarz on the non-repeating head/tail). Offsets whose bound
  /// falls below the acceptance threshold provably cannot synchronize and
  /// skip the exact window_-sample dot — the decisions (and therefore every
  /// output byte) are unchanged, only the arithmetic volume drops.
  bool screen_ok_ = false;      ///< segment structure verified at construction
  std::size_t seg_len_ = 0;     ///< one symbol period in samples
  std::size_t preamble_len_ = 0;  ///< eight preamble symbols in samples
  double seg0_energy_ = 0.0;    ///< energy of the (distinct) first segment
  double tail_energy_ = 0.0;    ///< energy of the SFD + pulse-tail remainder
  /// Hill-climb extension past a threshold crossing so a peak straddling a
  /// round boundary refines to its true offset (fixed width => partition
  /// invariant).
  std::size_t guard_ = 0;

  cvec buffer_;
  std::size_t start_ = 0;  ///< consumed prefix within buffer_ (compacted lazily)
  std::uint64_t base_position_ = 0;  ///< stream index of data()[0]
  /// Offset (within buffer_) of a detected frame start still waiting for
  /// frame_need_ samples of lookahead; SIZE_MAX = none pending.
  std::size_t pending_sync_ = kNoPendingSync;
  static constexpr std::size_t kNoPendingSync = static_cast<std::size_t>(-1);

  std::size_t last_queue_depth_ = 0;
  std::uint64_t last_dropped_ = 0;
  /// Per-sample |x|^2, maintained incrementally: computed once when a block
  /// arrives (push) and erased alongside buffer_ at compaction, so a sample's
  /// norm is never recomputed across the scan rounds that overlap it. Always
  /// parallel to buffer_.
  rvec norms_;
  /// Scratch: per-round prefix sums over norms_. Still rebuilt per round —
  /// anchoring the running sum at each round's first offset (not at a
  /// persistent epoch) is what keeps window energies bit-identical to the
  /// pre-cache scanner, since float prefix differences depend on the anchor.
  rvec energy_prefix_;
  cvec corr_strip_;  ///< scratch: corr_many output strip per scan round

  ScannerStats stats_;
};

}  // namespace ctc::sentry
