// Per-frame verdict records and their JSONL wire format.
//
// The sentry emits one record per decoded frame as a single JSON line
// (JSONL), so a long-running monitor can be tailed, grepped, and diffed.
// Like the telemetry JSON the schema is versioned and every double prints
// with %.17g, which makes two runs that compute identical verdicts emit
// byte-identical lines — the property the replay-determinism CI gate
// diffs (see docs/SENTRY.md).
#pragma once

#include <cstdint>
#include <string>

namespace ctc::sentry {

/// Bumped whenever the verdict JSONL layout changes shape.
inline constexpr int kVerdictSchemaVersion = 1;

/// One decoded frame's detection outcome plus the ingest-side context the
/// operator needs to interpret it (queue depth, drops so far).
struct VerdictRecord {
  std::size_t channel = 0;        ///< channel index within the service
  std::uint64_t frame_index = 0;  ///< per-channel decoded-frame counter
  /// Absolute sample index of the frame start within the *scanned* stream
  /// (i.e. after any ingest-side drops).
  std::uint64_t stream_position = 0;
  std::size_t frame_samples = 0;  ///< samples the decoded PPDU occupied
  bool frame_ok = false;          ///< SHR+PHR+DSSS+FCS all accepted
  std::size_t points = 0;         ///< constellation points the verdict used
  /// True when enough points accumulated for a cumulant verdict; the
  /// feature fields below are zero when false.
  bool valid = false;
  double de2 = 0.0;       ///< DE^2 distance to the QPSK anchor
  double c40 = 0.0;       ///< Chat40 (per detector C40 mode)
  double c42 = 0.0;       ///< Chat42
  bool is_attack = false; ///< H1: WiFi waveform emulation
  /// Ring-buffer depth observed when the frame's last sample was handed to
  /// the scanner. Deterministic in lockstep pipelines; a load signal in
  /// threaded ones.
  std::size_t queue_depth = 0;
  /// Total samples dropped at ingest on this channel before this verdict.
  std::uint64_t dropped_before = 0;

  /// Renders the record as one JSON line (no trailing newline).
  std::string to_jsonl() const;

  /// Appends the same line to `out` — the buffered-writer form: a channel's
  /// whole verdict stream accumulates into one growing string with no
  /// per-record temporary, and the bytes are identical to to_jsonl().
  void append_jsonl(std::string& out) const;
};

}  // namespace ctc::sentry
