// The sentry service: N independent channels sharded across worker threads.
//
// Each channel is a deterministic pipeline — pull one ingest block from its
// SampleSource, push it into the channel's SPSC ring (overflow = dropped,
// counted exactly), then feed the channel's StreamScanner straight from
// ring storage via the zero-copy peek/consume API (no staging buffer; the
// producer cannot overwrite unconsumed slots, so the scanner reads the
// ring's memory directly and the samples are retired only afterwards).
// Running ingest and drain on one thread keeps every queue depth, drop
// count, and verdict a pure function of the source configuration:
// replaying a capture yields byte-identical verdict JSONL at any shard
// count, which is the property the replay CI gate diffs. (The ring is
// still exercised through its atomic producer/consumer protocol; the
// free-running two-thread arrangement is covered by the TSan stress test
// and by bench/perf_sentry's latency harness.)
//
// Two drain schedulers (ServiceConfig::scheduler):
//
//   * lockstep — the historical reference: each channel runs start to
//     finish on its worker, at most one drain block per ingest block.
//     Fully shard-invariant in every scenario, including overload.
//   * deficit_round_robin (default) — a shard's channels advance in
//     deterministic rounds: one ingest block each, then a deficit-weighted
//     drain budget each (backlogged channels earn proportionally more,
//     floor of one block, so no channel starves). Provably byte-identical
//     to lockstep for single-channel shards and whenever nothing drops
//     (the deficit floor covers the whole backlog); under MULTI-channel
//     overload the weights couple a shard's channels, so verdicts depend
//     on the channel-to-shard assignment — use lockstep when a shard-
//     invariant overload reference is needed (see docs/SENTRY.md).
//
// Overload is modeled deterministically: configure drain_block smaller than
// ingest_block and the ring fills at a fixed rate, dropping exactly
// ingested - accepted samples at the ingest boundary — the monitor sheds
// load instead of stalling, and the books always balance.
//
// Determinism across shards: worker w runs channels w, w+shards, ... — but
// every channel is self-contained (own source, ring, scanner, RNG stream,
// verdict buffer), so shard assignment only changes WHO runs a channel,
// never what it computes (lockstep always; DRR outside multi-channel
// overload). Telemetry is captured per channel — one TrialScope per
// channel under lockstep, per-phase slices merged in channel-chronological
// order under DRR — and committed in channel order after the workers join,
// the same commit-in-order discipline sim::TrialEngine uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sentry/frame_sync.h"
#include "sentry/ring_buffer.h"
#include "sentry/source.h"

namespace ctc::sentry {

struct ChannelConfig {
  ScannerConfig scanner;
  /// SPSC ring capacity in samples (power of two).
  std::size_t ring_capacity = std::size_t{1} << 15;
  /// Samples pulled from the source per lockstep iteration.
  std::size_t ingest_block = 4096;
  /// Samples popped toward the scanner per iteration. Smaller than
  /// ingest_block => deterministic overload (the ring fills and drops).
  std::size_t drain_block = 4096;
};

/// How a shard divides drain bandwidth among its channels (header comment).
enum class DrainScheduler {
  lockstep,             ///< one drain block per ingest block, channel at a time
  deficit_round_robin,  ///< backlog-weighted round-robin across the shard
};

struct ServiceConfig {
  ChannelConfig channel;
  std::size_t channels = 1;
  /// Worker threads the channels are sharded across (clamped to channels).
  std::size_t shards = 1;
  DrainScheduler scheduler = DrainScheduler::deficit_round_robin;
};

/// Everything one channel produced, exact to the sample.
struct ChannelReport {
  std::uint64_t ingested = 0;  ///< samples the source emitted
  std::uint64_t accepted = 0;  ///< samples that entered the ring
  std::uint64_t dropped = 0;   ///< ingested - accepted, shed at ingest
  /// Drain turns that moved >= 1 sample to the scanner. A starvation
  /// signal for the scheduler smoke test; not serialized into verdicts.
  std::uint64_t drain_turns = 0;
  ScannerStats scanner;
  std::string verdicts_jsonl;  ///< one line per verdict, '\n'-terminated
};

struct ServiceReport {
  std::vector<ChannelReport> channels;
  /// Per-channel verdict streams concatenated in channel order — the
  /// byte sequence the replay-determinism gate compares.
  std::string verdicts_jsonl;

  std::uint64_t total_ingested() const;
  std::uint64_t total_dropped() const;
  std::uint64_t total_verdicts() const;
  std::uint64_t total_attacks() const;
};

/// Live progress counters for the snapshot endpoint. Relaxed atomics bumped
/// by whichever worker makes progress: cheap, monotonic, and approximate
/// while running; exact once join() returns. Never used for control flow.
struct SentryCounters {
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> frames_detected{0};
  std::atomic<std::uint64_t> verdicts{0};
  std::atomic<std::uint64_t> attacks{0};

  /// One JSON line: {"sentry_snapshot_schema":1,...}.
  std::string snapshot_json() const;
};

class SentryService {
 public:
  /// Builds the per-channel sample source; called once per channel, on the
  /// worker that runs the channel. Must be thread-safe for distinct
  /// channels.
  using SourceFactory =
      std::function<std::unique_ptr<SampleSource>(std::size_t channel)>;

  SentryService(ServiceConfig config, SourceFactory make_source);
  ~SentryService();
  SentryService(const SentryService&) = delete;
  SentryService& operator=(const SentryService&) = delete;

  /// Spawns the shard workers and returns immediately; counters() is live
  /// from here until join().
  void start();

  /// Waits for every channel to finish, commits per-channel telemetry in
  /// channel order, and returns the exact report. Rethrows the first
  /// channel's exception (by channel order) if any worker failed.
  ServiceReport join();

  /// start() + join().
  ServiceReport run();

  const SentryCounters& counters() const { return counters_; }

 private:
  void run_shard_lockstep(std::size_t shard, std::size_t shards);
  void run_shard_drr(std::size_t shard, std::size_t shards);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServiceConfig config_;
  SourceFactory make_source_;
  SentryCounters counters_;
};

}  // namespace ctc::sentry
