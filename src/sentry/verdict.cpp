#include "sentry/verdict.h"

#include <cinttypes>
#include <cstdio>

namespace ctc::sentry {

namespace {

void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  out += buffer;
}

}  // namespace

std::string VerdictRecord::to_jsonl() const {
  std::string out;
  out.reserve(256);
  append_jsonl(out);
  return out;
}

void VerdictRecord::append_jsonl(std::string& out) const {
  out += "{\"sentry_verdict_schema\":";
  append_u64(out, static_cast<std::uint64_t>(kVerdictSchemaVersion));
  out += ",\"channel\":";
  append_u64(out, channel);
  out += ",\"frame\":";
  append_u64(out, frame_index);
  out += ",\"stream_pos\":";
  append_u64(out, stream_position);
  out += ",\"frame_samples\":";
  append_u64(out, frame_samples);
  out += ",\"frame_ok\":";
  out += frame_ok ? "true" : "false";
  out += ",\"points\":";
  append_u64(out, points);
  out += ",\"valid\":";
  out += valid ? "true" : "false";
  out += ",\"de2\":";
  append_double(out, de2);
  out += ",\"c40\":";
  append_double(out, c40);
  out += ",\"c42\":";
  append_double(out, c42);
  out += ",\"is_attack\":";
  out += is_attack ? "true" : "false";
  out += ",\"queue_depth\":";
  append_u64(out, queue_depth);
  out += ",\"dropped\":";
  append_u64(out, dropped_before);
  out += "}";
}

}  // namespace ctc::sentry
