// Sample sources feeding the sentry's ingest ring.
//
// One interface, three providers: ReplaySource streams a cf32 capture (the
// deterministic path the replay CI gate diffs), LinkSource synthesizes a
// live mix of authentic and attack frames through a sim::Link channel (the
// "what would a monitor see on the air" path), and RateLimitedSource wraps
// either to pace delivery to a real-time sample rate. Only the rate limiter
// reads a clock — replay and live generation are pure functions of their
// configuration, which is what makes sentry verdict streams replayable.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>

#include "channel/environment.h"
#include "dsp/rng.h"
#include "dsp/types.h"
#include "sim/link.h"
#include "zigbee/frame.h"

namespace ctc::sentry {

/// Pull interface the ingest thread drains: fill up to out.size() samples,
/// return the count actually written. 0 means end of stream (sources are
/// not restartable).
class SampleSource {
 public:
  virtual ~SampleSource() = default;
  virtual std::size_t next_block(std::span<cplx> out) = 0;
};

/// Replays an in-memory capture (optionally loaded from a cf32 file)
/// `repeat` times, unthrottled.
class ReplaySource : public SampleSource {
 public:
  explicit ReplaySource(cvec samples, std::size_t repeat = 1);

  /// Loads a cf32 capture (dsp::read_cf32) and replays it `repeat` times.
  static std::unique_ptr<ReplaySource> from_file(
      const std::filesystem::path& path, std::size_t repeat = 1);

  std::size_t next_block(std::span<cplx> out) override;

  std::size_t capture_samples() const { return samples_.size(); }

 private:
  cvec samples_;
  std::size_t repeat_;
  std::size_t position_ = 0;
  std::size_t pass_ = 0;
};

struct LinkSourceConfig {
  /// Channel both frame kinds propagate through.
  channel::Environment environment = channel::Environment::awgn(12.0);
  /// Attack emulator settings for the emulated frames.
  attack::EmulatorConfig emulator;
  /// Total frames emitted before end-of-stream.
  std::size_t frames = 64;
  /// Every attack_every-th frame (1-based) is WiFi-emulated; 0 = all
  /// authentic.
  std::size_t attack_every = 3;
  /// Idle (zero) samples between consecutive frames.
  std::size_t gap_samples = 512;
  std::size_t payload_bytes = 20;
  std::uint64_t seed = 0x5EA15EA1;
};

/// Synthesizes a continuous stream the way the air would look to a monitor:
/// frame, gap, frame, gap, ... with every attack_every-th frame replaced by
/// the WiFi waveform-emulation attack. Per-frame channel noise comes from
/// Rng::for_stream(seed, channel), so two LinkSources with the same config
/// and channel emit bit-identical streams. Frame content cycles through 8
/// variants to bound the links' waveform caches.
class LinkSource : public SampleSource {
 public:
  LinkSource(LinkSourceConfig config, std::size_t channel);

  std::size_t next_block(std::span<cplx> out) override;

  /// True for the 1-based frame index the generator makes an attack frame —
  /// ground truth for parity tests.
  static bool is_attack_frame(const LinkSourceConfig& config,
                              std::size_t frame_number);

 private:
  void synthesize_next();

  LinkSourceConfig config_;
  sim::Link authentic_;
  sim::Link emulated_;
  dsp::Rng rng_;
  cvec pending_;  ///< current frame waveform + trailing gap
  std::size_t pending_position_ = 0;
  std::size_t frames_emitted_ = 0;
};

/// Paces an inner source to `samples_per_second` with a steady_clock
/// deadline per block — the sentry's only clock dependency, and it never
/// influences sample VALUES, only when they arrive (verdicts stay
/// replay-identical; queue depths become load-dependent, as they should).
class RateLimitedSource : public SampleSource {
 public:
  RateLimitedSource(std::unique_ptr<SampleSource> inner,
                    double samples_per_second);

  std::size_t next_block(std::span<cplx> out) override;

 private:
  std::unique_ptr<SampleSource> inner_;
  double rate_;
  std::uint64_t released_ = 0;
  std::optional<std::chrono::steady_clock::time_point> start_;
};

}  // namespace ctc::sentry
