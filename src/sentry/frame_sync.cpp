#include "sentry/frame_sync.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "dsp/kernels/kernels.h"
#include "dsp/require.h"
#include "sim/telemetry.h"
#include "zigbee/chip_sequences.h"
#include "zigbee/transmitter.h"

namespace ctc::sentry {

StreamScanner::StreamScanner(ScannerConfig config, std::size_t channel,
                             VerdictFn on_verdict)
    : config_(std::move(config)),
      channel_(channel),
      on_verdict_(std::move(on_verdict)),
      receiver_(config_.receiver),
      detector_(config_.detector) {
  CTC_REQUIRE(config_.scan_span > 0);
  CTC_REQUIRE(config_.max_psdu_bytes >= 1);
  CTC_REQUIRE(config_.max_psdu_bytes <= zigbee::kMaxPsduBytes);
  const zigbee::Transmitter tx(
      {.samples_per_chip = config_.receiver.samples_per_chip,
       .normalize_power = true});
  shr_reference_ = tx.shr_reference();
  window_ = shr_reference_.size();
  reference_energy_ =
      dsp::kernels::active().energy(shr_reference_.data(), window_);
  // A threshold crossing can land a few samples before the true correlation
  // peak (the metric is smooth across sub-chip offsets); half a symbol of
  // hill-climb headroom refines it without ever re-deciding earlier offsets.
  guard_ = 8 * config_.receiver.samples_per_chip;
  frame_need_ =
      ppdu_samples(config_.max_psdu_bytes, config_.receiver.samples_per_chip);

  // Preamble-structure screen setup. The SHR is eight identical preamble
  // symbols followed by the SFD: with the O-QPSK half-sine pulse confined to
  // one chip period, every preamble symbol after the first reproduces the
  // same sample block exactly (the first differs only in its leading chip,
  // which has no predecessor). Verify that bitwise rather than assume it —
  // if a future waveform profile breaks the structure the scanner falls
  // back to the exact full sweep and stays correct.
  seg_len_ = zigbee::kChipsPerSymbol * config_.receiver.samples_per_chip;
  preamble_len_ = 2 * zigbee::kPreambleBytes * seg_len_;
  screen_ok_ = window_ > preamble_len_ && preamble_len_ == 8 * seg_len_;
  for (std::size_t k = 2; screen_ok_ && k < 8; ++k) {
    screen_ok_ = std::memcmp(shr_reference_.data() + seg_len_,
                             shr_reference_.data() + k * seg_len_,
                             seg_len_ * sizeof(cplx)) == 0;
  }
  if (screen_ok_) {
    const dsp::kernels::KernelTable& kt = dsp::kernels::active();
    seg0_energy_ = kt.energy(shr_reference_.data(), seg_len_);
    tail_energy_ = kt.energy(shr_reference_.data() + preamble_len_,
                             window_ - preamble_len_);
  }
}

std::size_t StreamScanner::ppdu_samples(std::size_t psdu_bytes,
                                        std::size_t samples_per_chip) {
  // SHR (preamble + SFD) + PHR = kPreambleBytes + 2 bytes, two symbols per
  // byte; the O-QPSK half-sine tail adds one chip period.
  const std::size_t symbols = (zigbee::kPreambleBytes + 2 + psdu_bytes) * 2;
  return (symbols * zigbee::kChipsPerSymbol + 1) * samples_per_chip;
}

void StreamScanner::push(std::span<const cplx> samples,
                         std::size_t queue_depth,
                         std::uint64_t dropped_so_far) {
  stats_.samples_in += samples.size();
  last_queue_depth_ = queue_depth;
  last_dropped_ = dropped_so_far;
  CTC_TELEM_COUNT("sentry", "samples_in", samples.size());
  buffer_.insert(buffer_.end(), samples.begin(), samples.end());
  // Incremental frame-sync state: each sample's |x|^2 is computed exactly
  // once, on arrival. Scan rounds overlap by window_ - 1 + guard_ samples,
  // so the pre-cache scanner recomputed these norms once per overlapping
  // round; now they are loads.
  const std::size_t old_size = norms_.size();
  norms_.resize(buffer_.size());
  for (std::size_t i = old_size; i < buffer_.size(); ++i) {
    norms_[i] = std::norm(buffer_[i]);
  }
  advance(false);
}

void StreamScanner::flush() { advance(true); }

void StreamScanner::advance(bool flushing) {
  for (;;) {
    if (pending_sync_ != kNoPendingSync) {
      const bool ready = avail() >= pending_sync_ + frame_need_;
      if (!ready && !flushing) return;
      if (!ready && avail() <= pending_sync_) {
        // Flushing and even the frame start fell off the stream end.
        consume(avail());
        pending_sync_ = kNoPendingSync;
        return;
      }
      const std::size_t offset = pending_sync_;
      pending_sync_ = kNoPendingSync;
      decode_at(offset);
      continue;
    }
    if (!scan_round(flushing)) return;
  }
}

bool StreamScanner::scan_round(bool flushing) {
  // A full round needs every offset in [0, scan_span) to see a complete
  // correlation window, plus the hill-climb guard. The requirement is a
  // fixed sample count, which is what makes the scanner's decisions
  // independent of how the stream was chopped into push() blocks.
  const std::size_t full_need = config_.scan_span + window_ - 1 + guard_;
  if (!flushing && avail() < full_need) return false;
  if (avail() == 0) return false;

  std::size_t limit = 0;
  if (avail() >= window_) {
    limit = std::min(config_.scan_span, avail() - window_ + 1);
  }
  if (limit == 0) {
    // Flushing with a sub-window tail: nothing left can synchronize.
    consume(avail());
    return true;
  }

  ++stats_.scan_rounds;
  CTC_TELEM_TIMER("sentry", "scan_ns");
  const dsp::kernels::KernelTable& kt = dsp::kernels::active();
  const std::size_t search_end =
      std::min(avail() - window_, limit - 1 + guard_);

  // Sliding window energy via prefix sums: O(1) per offset instead of a
  // second O(window) reduction. The running sum reads the cached per-sample
  // norms but is still anchored at this round's first offset and added in
  // the same left-to-right order, so every window energy is bit-identical
  // to the pre-cache scanner (a persistent epoch-anchored prefix would not
  // be: float prefix differences depend on the anchor).
  energy_prefix_.resize(search_end + window_ + 1);
  energy_prefix_[0] = 0.0;
  const double* norms = norms_.data() + start_;
  for (std::size_t i = 0; i < search_end + window_; ++i) {
    energy_prefix_[i + 1] = energy_prefix_[i] + norms[i];
  }
  const auto window_energy = [&](std::size_t offset) {
    return energy_prefix_[offset + window_] - energy_prefix_[offset];
  };
  const auto metric_at = [&](std::size_t offset) {
    const cplx correlation =
        kt.dot_conj(data() + offset, shr_reference_.data(), window_);
    return std::norm(correlation) /
           (window_energy(offset) * reference_energy_);
  };

  // Preamble-structure screen. One corr_many pass correlates the stream
  // against the repeated preamble segment at every offset the round can
  // touch (including each offset's seven segment-aligned echoes). For a
  // candidate offset o, the full-window correlation splits exactly (in real
  // arithmetic) into the head segment, seven repeated segments, and the
  // SFD/tail remainder:
  //
  //   |dot(o)| <= sqrt(7 * sum_k |c(o + k*seg)|^2)        (triangle + C-S
  //             + sqrt(E_sig(o, seg)        * E_seg0)      over segments,
  //             + sqrt(E_sig(o+8seg, tail)  * E_tail)      C-S on the rest)
  //
  // The 1e-6 slack swamps every float-rounding discrepancy between this
  // bound and the exact kernel's summation order (relative error there is
  // O(window * eps) ~ 1e-13), so bound < threshold proves the exact metric
  // cannot reach the threshold and the offset is skipped without changing
  // any decision. Survivors — true peaks and segment-aligned partial
  // overlaps — still run the exact dot in the original order.
  const bool screened = screen_ok_;
  if (screened) {
    const std::size_t strip = search_end + 6 * seg_len_ + 1;
    corr_strip_.resize(strip);
    kt.corr_many(data() + seg_len_, shr_reference_.data() + seg_len_,
                 seg_len_, strip, corr_strip_.data());
  }
  const auto bound_metric = [&](std::size_t offset, double we) {
    double seg_power = 0.0;
    for (std::size_t k = 0; k < 7; ++k) {
      seg_power += std::norm(corr_strip_[offset + k * seg_len_]);
    }
    const double head =
        energy_prefix_[offset + seg_len_] - energy_prefix_[offset];
    const double tail = energy_prefix_[offset + window_] -
                        energy_prefix_[offset + preamble_len_];
    const double bound = std::sqrt(7.0 * seg_power) +
                         std::sqrt(head * seg0_energy_) +
                         std::sqrt(tail * tail_energy_);
    return bound * bound * (1.0 + 1e-6) / (we * reference_energy_);
  };

  std::size_t best = kNoPendingSync;
  double best_metric = 0.0;
  for (std::size_t offset = 0; offset < limit; ++offset) {
    const double we = window_energy(offset);
    if (we <= config_.energy_gate) continue;
    if (screened && bound_metric(offset, we) < config_.sync_threshold) {
      continue;  // provably below threshold: skipping cannot change `best`
    }
    const double metric = metric_at(offset);
    if (metric >= config_.sync_threshold && metric > best_metric) {
      best = offset;
      best_metric = metric;
    }
  }

  if (best == kNoPendingSync) {
    ++stats_.sync_misses;
    CTC_TELEM_COUNT("sentry", "sync_miss", 1);
    consume(limit);
    return true;
  }

  // Hill-climb past the round edge: whenever the argmax advances, the
  // horizon extends another guard_ offsets (never beyond search_end).
  std::size_t horizon = std::min(best + guard_, search_end);
  for (std::size_t offset = best + 1; offset <= horizon; ++offset) {
    const double we = window_energy(offset);
    if (we <= config_.energy_gate) continue;
    if (screened && bound_metric(offset, we) <= best_metric) {
      continue;  // bound can't beat the incumbent, so neither can the metric
    }
    if (const double metric = metric_at(offset); metric > best_metric) {
      best = offset;
      best_metric = metric;
      horizon = std::min(best + guard_, search_end);
    }
  }

  ++stats_.frames_detected;
  CTC_TELEM_COUNT("sentry", "frame_detected", 1);
  pending_sync_ = best;
  return true;
}

void StreamScanner::decode_at(std::size_t offset) {
  CTC_TELEM_TIMER("sentry", "frame_ns");
  const std::size_t have = avail() - offset;
  const std::size_t take = std::min(have, frame_need_);
  std::optional<zigbee::ReceiveResult> decoded;
  {
    CTC_TELEM_TIMER("sentry", "decode_ns");
    decoded = receiver_.receive(std::span<const cplx>(data() + offset, take));
  }
  const zigbee::ReceiveResult& rx = *decoded;

  // False sync (or a truncated tail): skip past the correlated window so
  // the next round starts on fresh samples.
  std::size_t consumed = std::min(window_, have);
  if (rx.phr_ok) {
    ++stats_.frames_decoded;
    if (rx.frame_ok()) ++stats_.frames_ok;
    CTC_TELEM_COUNT("sentry", "frame_decoded", 1);
    consumed = std::min(
        ppdu_samples(rx.psdu.size(), config_.receiver.samples_per_chip), take);

    const rvec& chips =
        config_.tap == ScanTap::discriminator ? rx.freq_chips : rx.soft_chips;
    std::optional<defense::Verdict> verdict;
    {
      CTC_TELEM_TIMER("sentry", "classify_ns");
      detector_.begin_frame();
      detector_.push_chips(chips);
      verdict = detector_.verdict(config_.min_points);
    }

    VerdictRecord record;
    record.channel = channel_;
    record.frame_index = stats_.verdicts;
    record.stream_position = base_position_ + offset;
    record.frame_samples = consumed;
    record.frame_ok = rx.frame_ok();
    record.points = detector_.points();
    record.valid = verdict.has_value();
    if (verdict) {
      record.de2 = verdict->distance_sq;
      record.c40 = verdict->feature.c40;
      record.c42 = verdict->feature.c42;
      record.is_attack = verdict->is_attack;
    }
    record.queue_depth = last_queue_depth_;
    record.dropped_before = last_dropped_;

    ++stats_.verdicts;
    if (record.is_attack) ++stats_.verdicts_attack;
    CTC_TELEM_COUNT("sentry", "verdict", 1);
    if (record.is_attack) CTC_TELEM_COUNT("sentry", "verdict_attack", 1);
    CTC_TELEM_HISTO("sentry", "queue_depth", record.queue_depth);
    if (on_verdict_) on_verdict_(record);
  } else {
    CTC_TELEM_COUNT("sentry", "false_sync", 1);
  }
  consume(offset + consumed);
}

void StreamScanner::consume(std::size_t count) {
  CTC_REQUIRE(count <= avail());
  start_ += count;
  base_position_ += count;
  stats_.samples_consumed += count;
  // Amortized compaction: reclaim the consumed prefix once it dominates the
  // buffer, so steady-state cost is O(1) per sample.
  if (start_ >= 4096 && start_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(start_));
    norms_.erase(norms_.begin(),
                 norms_.begin() + static_cast<std::ptrdiff_t>(start_));
    start_ = 0;
  }
}

}  // namespace ctc::sentry
