#include "sentry/service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

#include "dsp/require.h"
#include "sim/telemetry.h"

namespace ctc::sentry {

std::uint64_t ServiceReport::total_ingested() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) total += channel.ingested;
  return total;
}

std::uint64_t ServiceReport::total_dropped() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) total += channel.dropped;
  return total;
}

std::uint64_t ServiceReport::total_verdicts() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) {
    total += channel.scanner.verdicts;
  }
  return total;
}

std::uint64_t ServiceReport::total_attacks() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) {
    total += channel.scanner.verdicts_attack;
  }
  return total;
}

std::string SentryCounters::snapshot_json() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "{\"sentry_snapshot_schema\":1,\"ingested\":%" PRIu64
                ",\"accepted\":%" PRIu64 ",\"dropped\":%" PRIu64
                ",\"frames_detected\":%" PRIu64 ",\"verdicts\":%" PRIu64
                ",\"attacks\":%" PRIu64 "}",
                ingested.load(std::memory_order_relaxed),
                accepted.load(std::memory_order_relaxed),
                dropped.load(std::memory_order_relaxed),
                frames_detected.load(std::memory_order_relaxed),
                verdicts.load(std::memory_order_relaxed),
                attacks.load(std::memory_order_relaxed));
  return buffer;
}

struct SentryService::Impl {
  std::vector<std::thread> workers;
  std::vector<ChannelReport> reports;
  std::vector<sim::telemetry::TrialSnapshot> snapshots;
  std::vector<std::exception_ptr> errors;
  bool started = false;
  bool joined = false;
};

SentryService::SentryService(ServiceConfig config, SourceFactory make_source)
    : impl_(std::make_unique<Impl>()),
      config_(config),
      make_source_(std::move(make_source)) {
  CTC_REQUIRE(config_.channels >= 1);
  CTC_REQUIRE(config_.shards >= 1);
  CTC_REQUIRE(config_.channel.ingest_block >= 1);
  CTC_REQUIRE(config_.channel.drain_block >= 1);
  CTC_REQUIRE(make_source_ != nullptr);
}

SentryService::~SentryService() {
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
}

namespace {

// Deficit-round-robin tuning, in drain_block units. The deficit cap bounds
// how much unused credit a stalled channel can bank; the budget cap bounds
// how long one channel can hold the worker in a single turn.
constexpr std::size_t kDeficitCapBlocks = 8;
constexpr std::size_t kBudgetCapBlocks = 4;

/// One channel's whole pipeline state: source, ring, scanner, books. Both
/// schedulers drive channels through the same three verbs — ingest_once(),
/// drain(), finish() — so the per-sample accounting and the zero-copy
/// drain path are scheduler-independent by construction. Heap-allocated
/// and pinned (the verdict callback captures `this`).
struct ChannelRun {
  const ChannelConfig& config;
  std::size_t channel;
  std::unique_ptr<SampleSource> source;
  SentryCounters& counters;
  ChannelReport report;
  SpscRing<cplx> ring;
  StreamScanner scanner;
  cvec ingest;
  std::size_t deficit = 0;  ///< banked drain credit (DRR only)
  bool source_done = false;
  bool flushed = false;

  ChannelRun(const ChannelConfig& cfg, std::size_t index,
             std::unique_ptr<SampleSource> src, SentryCounters& ctrs)
      : config(cfg),
        channel(index),
        source(std::move(src)),
        counters(ctrs),
        ring(cfg.ring_capacity),
        scanner(cfg.scanner, index,
                [this](const VerdictRecord& record) {
                  CTC_TELEM_TIMER("sentry", "write_ns");
                  record.append_jsonl(report.verdicts_jsonl);
                  report.verdicts_jsonl += '\n';
                  counters.verdicts.fetch_add(1, std::memory_order_relaxed);
                  if (record.is_attack) {
                    counters.attacks.fetch_add(1, std::memory_order_relaxed);
                  }
                }),
        ingest(cfg.ingest_block) {}
  ChannelRun(const ChannelRun&) = delete;
  ChannelRun& operator=(const ChannelRun&) = delete;

  std::size_t backlog() const { return ring.size(); }
  bool finished() const { return flushed; }

  /// Pulls one block from the source into the ring (overflow = dropped,
  /// counted exactly). Returns false once the source is exhausted.
  bool ingest_once() {
    if (source_done) return false;
    const std::size_t produced = source->next_block(std::span<cplx>(ingest));
    if (produced == 0) {
      source_done = true;
      return false;
    }
    const std::size_t accepted =
        ring.try_push(std::span<const cplx>(ingest.data(), produced));
    report.ingested += produced;
    report.accepted += accepted;
    report.dropped += produced - accepted;
    counters.ingested.fetch_add(produced, std::memory_order_relaxed);
    counters.accepted.fetch_add(accepted, std::memory_order_relaxed);
    counters.dropped.fetch_add(produced - accepted,
                               std::memory_order_relaxed);
    CTC_TELEM_COUNT("sentry", "ingested", produced);
    if (produced != accepted) {
      CTC_TELEM_COUNT("sentry", "dropped", produced - accepted);
    }
    return true;
  }

  /// Feeds the scanner up to `want` queued samples straight from ring
  /// storage (zero-copy: peek spans, push, then consume — the producer
  /// cannot touch unconsumed slots, so no staging buffer is needed). A
  /// wrapped region arrives as two pushes carrying the same depth stamp;
  /// the scanner's output is a function of the sample stream alone, not
  /// of push partitioning. Returns samples drained.
  std::size_t drain(std::size_t want) {
    const auto view = ring.peek(want);
    const std::size_t got = view.total();
    if (got == 0) return 0;
    // Queue depth AFTER this drain retires = what is still waiting when
    // the block reaches the scanner; dropped total lets the verdict
    // record carry the books so far.
    const std::size_t depth_after = ring.size() - got;
    scanner.push(view.first, depth_after, report.dropped);
    if (!view.second.empty()) {
      scanner.push(view.second, depth_after, report.dropped);
    }
    ring.consume(got);
    ++report.drain_turns;
    return got;
  }

  /// Source exhausted and ring empty: flush the scanner tail and settle
  /// the books.
  void finish() {
    CTC_REQUIRE(source_done && ring.empty() && !flushed);
    scanner.flush();
    flushed = true;
    report.scanner = scanner.stats();
    counters.frames_detected.fetch_add(report.scanner.frames_detected,
                                       std::memory_order_relaxed);
    // The books must balance exactly: every produced sample was either
    // accepted (and eventually scanned) or dropped at ingest.
    CTC_REQUIRE(report.accepted + report.dropped == report.ingested);
    CTC_REQUIRE(report.scanner.samples_in == report.accepted);
  }
};

/// The historical reference schedule: one channel start to finish, at most
/// one drain block per ingest block (when drain_block < ingest_block the
/// ring fills at a fixed rate and overload drops are exact and
/// reproducible), then drain the backlog and flush.
void run_lockstep(ChannelRun& run) {
  while (run.ingest_once()) {
    run.drain(run.config.drain_block);
  }
  while (run.drain(run.config.drain_block) > 0) {
  }
  run.finish();
}

/// Folds one telemetry slice into a channel's accumulated snapshot. Merge
/// order is channel-chronological (the shard loop visits a channel's
/// phases in round order), so the per-channel result is independent of
/// which shard ran the channel whenever the drain sequence itself is
/// (see the header comment on DRR shard-invariance).
void merge_slice(sim::telemetry::TrialSnapshot& into,
                 sim::telemetry::TrialSnapshot&& slice) {
  for (auto& [id, cell] : slice.cells) {
    auto it = std::find_if(
        into.cells.begin(), into.cells.end(),
        [id = id](const auto& entry) { return entry.first == id; });
    if (it == into.cells.end()) {
      into.cells.emplace_back(id, cell);
    } else {
      it->second.merge(cell);
    }
  }
}

}  // namespace

void SentryService::start() {
  CTC_REQUIRE_MSG(!impl_->started, "SentryService::start called twice");
  impl_->started = true;

  const std::size_t shards = std::min(config_.shards, config_.channels);
  impl_->reports.resize(config_.channels);
  impl_->snapshots.resize(config_.channels);
  impl_->errors.resize(config_.channels);

  impl_->workers.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    impl_->workers.emplace_back([this, shard, shards] {
      if (config_.scheduler == DrainScheduler::lockstep) {
        run_shard_lockstep(shard, shards);
      } else {
        run_shard_drr(shard, shards);
      }
    });
  }
}

void SentryService::run_shard_lockstep(std::size_t shard,
                                       std::size_t shards) {
  for (std::size_t channel = shard; channel < config_.channels;
       channel += shards) {
    sim::telemetry::TrialScope scope;
    try {
      std::unique_ptr<SampleSource> source = make_source_(channel);
      CTC_REQUIRE(source != nullptr);
      ChannelRun run(config_.channel, channel, std::move(source), counters_);
      run_lockstep(run);
      impl_->reports[channel] = std::move(run.report);
    } catch (...) {
      impl_->errors[channel] = std::current_exception();
    }
    impl_->snapshots[channel] = scope.capture();
  }
}

void SentryService::run_shard_drr(std::size_t shard, std::size_t shards) {
  // The shard's channels, in channel order; a slot goes null once the
  // channel finishes (report harvested) or fails (error recorded).
  std::vector<std::unique_ptr<ChannelRun>> runs;
  std::vector<std::size_t> ids;
  for (std::size_t channel = shard; channel < config_.channels;
       channel += shards) {
    ids.push_back(channel);
    sim::telemetry::TrialScope scope;
    try {
      std::unique_ptr<SampleSource> source = make_source_(channel);
      CTC_REQUIRE(source != nullptr);
      runs.push_back(std::make_unique<ChannelRun>(
          config_.channel, channel, std::move(source), counters_));
    } catch (...) {
      impl_->errors[channel] = std::current_exception();
      runs.push_back(nullptr);
    }
    merge_slice(impl_->snapshots[channel], scope.capture());
  }

  const std::size_t drain_block = config_.channel.drain_block;
  // Runs one channel phase under its own telemetry slice; on failure the
  // channel is retired with its error recorded, like a lockstep worker.
  const auto phase = [&](std::size_t i, auto&& body) {
    sim::telemetry::TrialScope scope;
    try {
      body(*runs[i]);
    } catch (...) {
      impl_->errors[ids[i]] = std::current_exception();
      runs[i] = nullptr;
    }
    merge_slice(impl_->snapshots[ids[i]], scope.capture());
  };

  for (;;) {
    bool live_any = false;
    // Phase 1: one ingest block per channel with a live source.
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (!runs[i] || runs[i]->finished()) continue;
      live_any = true;
      if (!runs[i]->source_done) {
        phase(i, [](ChannelRun& run) { run.ingest_once(); });
      }
    }
    if (!live_any) break;

    // Phase 2: backlog-proportional weights over this round's backlogged
    // channels. Integer arithmetic only — the schedule must be exactly
    // reproducible.
    std::size_t total_backlog = 0;
    std::size_t backlogged = 0;
    for (const auto& run : runs) {
      if (!run || run->finished()) continue;
      const std::size_t queued = run->backlog();
      total_backlog += queued;
      if (queued > 0) ++backlogged;
    }

    // Phase 3: deficit-weighted drain, channel order. Weight floor 1 block
    // so no backlogged channel starves; a channel holding most of the
    // shard's backlog earns proportionally more credit.
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (!runs[i] || runs[i]->finished()) continue;
      const std::size_t queued = runs[i]->backlog();
      if (queued == 0) {
        runs[i]->deficit = 0;
        continue;
      }
      const std::size_t weight =
          std::max<std::size_t>(1, queued * backlogged / total_backlog);
      ChannelRun& run = *runs[i];
      run.deficit = std::min(run.deficit + weight * drain_block,
                             kDeficitCapBlocks * drain_block);
      const std::size_t budget = std::min(
          {run.deficit, queued, kBudgetCapBlocks * drain_block});
      phase(i, [budget](ChannelRun& r) {
        const std::size_t drained = r.drain(budget);
        r.deficit -= drained;
        if (r.ring.empty()) r.deficit = 0;
      });
    }

    // Phase 4: channels whose source is dry and ring is empty flush and
    // hand in their report.
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (!runs[i] || runs[i]->finished()) continue;
      if (runs[i]->source_done && runs[i]->ring.empty()) {
        phase(i, [](ChannelRun& run) { run.finish(); });
        if (runs[i] && runs[i]->finished()) {
          impl_->reports[ids[i]] = std::move(runs[i]->report);
          runs[i] = nullptr;
        }
      }
    }
  }
}

ServiceReport SentryService::join() {
  CTC_REQUIRE_MSG(impl_->started, "SentryService::join before start");
  CTC_REQUIRE_MSG(!impl_->joined, "SentryService::join called twice");
  impl_->joined = true;

  for (std::thread& worker : impl_->workers) worker.join();
  impl_->workers.clear();

  // Commit telemetry in channel order — the same fixed-order merge the
  // trial engine uses, so the telemetry JSON is shard-count independent.
  for (sim::telemetry::TrialSnapshot& snapshot : impl_->snapshots) {
    sim::telemetry::commit(std::move(snapshot));
  }
  for (const std::exception_ptr& error : impl_->errors) {
    if (error) std::rethrow_exception(error);
  }

  ServiceReport report;
  report.channels = std::move(impl_->reports);
  for (const ChannelReport& channel : report.channels) {
    report.verdicts_jsonl += channel.verdicts_jsonl;
  }
  return report;
}

ServiceReport SentryService::run() {
  start();
  return join();
}

}  // namespace ctc::sentry
