#include "sentry/service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

#include "dsp/require.h"
#include "sim/telemetry.h"

namespace ctc::sentry {

std::uint64_t ServiceReport::total_ingested() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) total += channel.ingested;
  return total;
}

std::uint64_t ServiceReport::total_dropped() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) total += channel.dropped;
  return total;
}

std::uint64_t ServiceReport::total_verdicts() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) {
    total += channel.scanner.verdicts;
  }
  return total;
}

std::uint64_t ServiceReport::total_attacks() const {
  std::uint64_t total = 0;
  for (const ChannelReport& channel : channels) {
    total += channel.scanner.verdicts_attack;
  }
  return total;
}

std::string SentryCounters::snapshot_json() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "{\"sentry_snapshot_schema\":1,\"ingested\":%" PRIu64
                ",\"accepted\":%" PRIu64 ",\"dropped\":%" PRIu64
                ",\"frames_detected\":%" PRIu64 ",\"verdicts\":%" PRIu64
                ",\"attacks\":%" PRIu64 "}",
                ingested.load(std::memory_order_relaxed),
                accepted.load(std::memory_order_relaxed),
                dropped.load(std::memory_order_relaxed),
                frames_detected.load(std::memory_order_relaxed),
                verdicts.load(std::memory_order_relaxed),
                attacks.load(std::memory_order_relaxed));
  return buffer;
}

struct SentryService::Impl {
  std::vector<std::thread> workers;
  std::vector<ChannelReport> reports;
  std::vector<sim::telemetry::TrialSnapshot> snapshots;
  std::vector<std::exception_ptr> errors;
  bool started = false;
  bool joined = false;
};

SentryService::SentryService(ServiceConfig config, SourceFactory make_source)
    : impl_(std::make_unique<Impl>()),
      config_(config),
      make_source_(std::move(make_source)) {
  CTC_REQUIRE(config_.channels >= 1);
  CTC_REQUIRE(config_.shards >= 1);
  CTC_REQUIRE(config_.channel.ingest_block >= 1);
  CTC_REQUIRE(config_.channel.drain_block >= 1);
  CTC_REQUIRE(make_source_ != nullptr);
}

SentryService::~SentryService() {
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
}

namespace {

/// One channel, start to finish, in lockstep (see the header comment).
ChannelReport run_channel(const ChannelConfig& config, std::size_t channel,
                          SampleSource& source, SentryCounters& counters) {
  ChannelReport report;
  SpscRing<cplx> ring(config.ring_capacity);
  StreamScanner scanner(
      config.scanner, channel, [&](const VerdictRecord& record) {
        report.verdicts_jsonl += record.to_jsonl();
        report.verdicts_jsonl += '\n';
        counters.verdicts.fetch_add(1, std::memory_order_relaxed);
        if (record.is_attack) {
          counters.attacks.fetch_add(1, std::memory_order_relaxed);
        }
      });

  cvec ingest(config.ingest_block);
  cvec drain(config.drain_block);
  const auto drain_once = [&] {
    const std::size_t got = ring.try_pop(std::span<cplx>(drain));
    if (got == 0) return false;
    // Queue depth AFTER the pop = what is still waiting when this block
    // reaches the scanner; dropped total lets the verdict record carry the
    // books so far.
    scanner.push(std::span<const cplx>(drain.data(), got), ring.size(),
                 report.dropped);
    return true;
  };

  for (;;) {
    const std::size_t produced =
        source.next_block(std::span<cplx>(ingest));
    if (produced == 0) break;
    const std::size_t accepted =
        ring.try_push(std::span<const cplx>(ingest.data(), produced));
    report.ingested += produced;
    report.accepted += accepted;
    report.dropped += produced - accepted;
    counters.ingested.fetch_add(produced, std::memory_order_relaxed);
    counters.accepted.fetch_add(accepted, std::memory_order_relaxed);
    counters.dropped.fetch_add(produced - accepted,
                               std::memory_order_relaxed);
    CTC_TELEM_COUNT("sentry", "ingested", produced);
    if (produced != accepted) {
      CTC_TELEM_COUNT("sentry", "dropped", produced - accepted);
    }
    // At most one drain block per ingest block: when drain_block <
    // ingest_block the ring fills at a fixed rate and overload drops are
    // exact and reproducible.
    drain_once();
  }
  // Source exhausted: drain the backlog, then flush the scanner's tail.
  while (drain_once()) {
  }
  scanner.flush();

  report.scanner = scanner.stats();
  counters.frames_detected.fetch_add(report.scanner.frames_detected,
                                     std::memory_order_relaxed);
  // The books must balance exactly: every produced sample was either
  // accepted (and eventually scanned) or dropped at ingest.
  CTC_REQUIRE(report.accepted + report.dropped == report.ingested);
  CTC_REQUIRE(report.scanner.samples_in == report.accepted);
  return report;
}

}  // namespace

void SentryService::start() {
  CTC_REQUIRE_MSG(!impl_->started, "SentryService::start called twice");
  impl_->started = true;

  const std::size_t shards = std::min(config_.shards, config_.channels);
  impl_->reports.resize(config_.channels);
  impl_->snapshots.resize(config_.channels);
  impl_->errors.resize(config_.channels);

  impl_->workers.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    impl_->workers.emplace_back([this, shard, shards] {
      for (std::size_t channel = shard; channel < config_.channels;
           channel += shards) {
        sim::telemetry::TrialScope scope;
        try {
          std::unique_ptr<SampleSource> source = make_source_(channel);
          CTC_REQUIRE(source != nullptr);
          impl_->reports[channel] =
              run_channel(config_.channel, channel, *source, counters_);
        } catch (...) {
          impl_->errors[channel] = std::current_exception();
        }
        impl_->snapshots[channel] = scope.capture();
      }
    });
  }
}

ServiceReport SentryService::join() {
  CTC_REQUIRE_MSG(impl_->started, "SentryService::join before start");
  CTC_REQUIRE_MSG(!impl_->joined, "SentryService::join called twice");
  impl_->joined = true;

  for (std::thread& worker : impl_->workers) worker.join();
  impl_->workers.clear();

  // Commit telemetry in channel order — the same fixed-order merge the
  // trial engine uses, so the telemetry JSON is shard-count independent.
  for (sim::telemetry::TrialSnapshot& snapshot : impl_->snapshots) {
    sim::telemetry::commit(std::move(snapshot));
  }
  for (const std::exception_ptr& error : impl_->errors) {
    if (error) std::rethrow_exception(error);
  }

  ServiceReport report;
  report.channels = std::move(impl_->reports);
  for (const ChannelReport& channel : report.channels) {
    report.verdicts_jsonl += channel.verdicts_jsonl;
  }
  return report;
}

ServiceReport SentryService::run() {
  start();
  return join();
}

}  // namespace ctc::sentry
