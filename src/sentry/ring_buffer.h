// Lock-free single-producer/single-consumer ring buffer for IQ ingestion.
//
// The sentry's ingest path decouples a sample source (file replay, live
// generator, some day an SDR driver) from the frame scanner: the producer
// pushes IQ blocks, the consumer drains them at its own pace, and when the
// consumer falls behind the producer *drops at the ingest boundary* with
// exact accounting instead of blocking — an always-on monitor must shed
// load, not stall the radio. Overflow semantics are explicit: try_push
// accepts as many samples as fit and reports the count; the caller decides
// what the remainder means (ChannelPipeline counts it as dropped).
//
// Concurrency contract: exactly one producer thread calls try_push and
// exactly one consumer thread calls try_pop. Indices are monotonically
// increasing sample counts (head = consumed, tail = produced) so
// full/empty never alias; the producer owns tail_, the consumer owns
// head_, and each observes the other side with acquire loads paired with
// its own release store. size() from a third thread is a racy-but-bounded
// estimate — fine for the snapshot endpoint, never used for control flow.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <span>

#include "dsp/require.h"

namespace ctc::sentry {

template <class T>
class SpscRing {
 public:
  /// Capacity must be a power of two (index masking) and at least 2.
  explicit SpscRing(std::size_t capacity) : mask_(capacity - 1) {
    CTC_REQUIRE(capacity >= 2);
    CTC_REQUIRE_MSG((capacity & (capacity - 1)) == 0,
                    "SpscRing capacity must be a power of two");
    slots_ = std::make_unique<T[]>(capacity);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Copies as many of `items` as currently fit and returns
  /// that count; the tail [count, items.size()) is the caller's overflow.
  std::size_t try_push(std::span<const T> items) {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t free_slots = capacity() - (tail - head);
    const std::size_t count = std::min(items.size(), free_slots);
    for (std::size_t i = 0; i < count; ++i) {
      slots_[(tail + i) & mask_] = items[i];
    }
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Consumer side. Pops up to out.size() queued samples into `out` and
  /// returns the count (0 when empty).
  std::size_t try_pop(std::span<T> out) {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t count = std::min(out.size(), tail - head);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// A consumer's zero-copy view of queued items, in ring storage. Because
  /// the ring wraps, the readable region is at most two contiguous spans;
  /// `second` is empty unless the region crosses the physical end.
  struct View {
    std::span<const T> first;
    std::span<const T> second;
    std::size_t total() const { return first.size() + second.size(); }
    bool empty() const { return first.empty(); }
  };

  /// Consumer side, zero-copy. Returns spans over up to `max` queued items
  /// WITHOUT retiring them: the producer cannot overwrite the viewed slots
  /// (they are still unconsumed), so the spans stay valid until the
  /// consumer calls consume(). The acquire load of tail_ makes the
  /// producer's writes to those slots visible, exactly as in try_pop —
  /// peek + consume is try_pop minus the staging copy.
  View peek(std::size_t max) const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t count = std::min(max, tail - head);
    const std::size_t index = head & mask_;
    const std::size_t contiguous = std::min(count, capacity() - index);
    return {std::span<const T>(slots_.get() + index, contiguous),
            std::span<const T>(slots_.get(), count - contiguous)};
  }

  /// Retires `count` items previously observed via peek(); the release
  /// store is what hands the freed slots back to the producer, so it must
  /// happen strictly AFTER the consumer is done reading them. `count` must
  /// not exceed the queued total.
  void consume(std::size_t count) {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    CTC_REQUIRE_MSG(count <= tail - head,
                    "SpscRing::consume past the produced tail");
    head_.store(head + count, std::memory_order_release);
  }

  /// Queued sample count. Exact from the producer or consumer thread; from
  /// anywhere else a bounded estimate. Loading head BEFORE tail keeps the
  /// difference non-negative (tail read later can only be >= the head
  /// snapshot); concurrent progress between the two loads can overshoot, so
  /// the clamp keeps the estimate within capacity.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return std::min(tail - head, capacity());
  }

  bool empty() const { return size() == 0; }

  /// Total samples ever accepted (producer-side monotonic count).
  std::size_t produced() const {
    return tail_.load(std::memory_order_acquire);
  }

  /// Total samples ever popped (consumer-side monotonic count).
  std::size_t consumed() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  std::unique_ptr<T[]> slots_;
  std::size_t mask_ = 0;
  // Separate cache lines so the producer's tail stores never bounce the
  // consumer's head line.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace ctc::sentry
