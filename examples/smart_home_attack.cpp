// The paper's motivating scenario (Sec. I): a WiFi device manipulates smart
// home ZigBee devices — thermostat, garage door, security camera — from
// across the room, and the cumulant defense catches every attempt.
//
//   $ ./smart_home_attack
//
// Simulates a day in a smart home: the gateway issues legitimate commands;
// a compromised WiFi laptop replays emulated versions of previously
// eavesdropped commands from 4 m away through the real-world channel
// (path loss + Rician fading + CFO). Each device decodes frames like a
// commodity CC26x2R1 chip and runs the |C40| detector.
#include <cstdio>
#include <string>
#include <vector>

#include "defense/detector.h"
#include "sim/defense_run.h"
#include "sim/link.h"
#include "zigbee/receiver.h"

int main() {
  using namespace ctc;
  dsp::Rng rng(99);

  struct Device {
    const char* name;
    std::uint16_t address;
    const char* command;
  };
  const std::vector<Device> devices = {
      {"thermostat", 0x0010, "SET_COOL_ON"},
      {"garage door", 0x0020, "OPEN"},
      {"security camera", 0x0030, "POWER_OFF"},
  };

  // Real-environment links at 4 m, commodity receiver profile.
  sim::LinkConfig gateway_config;
  gateway_config.environment = channel::Environment::real_world(4.0);
  gateway_config.profile = zigbee::ReceiverProfile::cc26x2r1();
  sim::LinkConfig attacker_config = gateway_config;
  attacker_config.kind = sim::LinkKind::emulated;
  const sim::Link gateway(gateway_config);
  const sim::Link attacker(attacker_config);

  // |C40| mode: immune to the residual phase/frequency offset of the
  // real channel (Sec. VI-C). Threshold from the Table V gap.
  defense::DetectorConfig detector_config;
  detector_config.c40_mode = defense::C40Mode::magnitude;
  detector_config.threshold = 0.15;
  const defense::Detector detector(detector_config);

  int attacks_succeeded = 0;
  int attacks_detected = 0;
  std::uint8_t sequence = 0;
  for (const Device& device : devices) {
    zigbee::MacFrame frame;
    frame.sequence = ++sequence;
    frame.dest_addr = device.address;
    frame.payload.assign(device.command,
                         device.command + std::string(device.command).size());

    // Legitimate command.
    const auto legit = gateway.send(frame, rng);
    const auto legit_verdict = detector.classify(legit.rx.freq_chips);
    std::printf("[gateway ] %-15s <- %-12s decoded=%s DE^2=%.4f verdict=%s\n",
                device.name, device.command, legit.success ? "yes" : "no",
                legit_verdict.distance_sq,
                legit_verdict.is_attack ? "ATTACK(!)" : "ok");

    // The attacker replays its emulated copy.
    const auto attack = attacker.send(frame, rng);
    if (attack.rx.freq_chips.size() < 8) {
      std::printf("[attacker] %-15s    (frame did not even sync)\n", device.name);
      continue;
    }
    const auto attack_verdict = detector.classify(attack.rx.freq_chips);
    attacks_succeeded += attack.success;
    attacks_detected += attack_verdict.is_attack;
    std::printf("[attacker] %-15s <- %-12s decoded=%s DE^2=%.4f verdict=%s\n",
                device.name, device.command, attack.success ? "yes" : "no",
                attack_verdict.distance_sq,
                attack_verdict.is_attack ? "ATTACK" : "missed(!)");
  }

  std::printf("\nsummary: %d/%zu emulated commands decoded by the devices "
              "(the attack works),\n         %d/%zu flagged by the cumulant "
              "defense (the seek works).\n",
              attacks_succeeded, devices.size(), attacks_detected, devices.size());
  return attacks_detected == static_cast<int>(devices.size()) ? 0 : 1;
}
