// The CTC waveform emulation attack, end to end (Secs. IV-V of the paper).
//
//   $ ./attack_demo
//
// Walks the full adversarial model: (1) the attacker eavesdrops a ZigBee
// control frame; (2) reverses the WiFi transmit chain to hide the waveform
// inside 64-QAM OFDM symbols; (3) allocates the quantized subcarriers onto
// its real WiFi channel (2440 MHz) so the 2 MHz heart lands on the victim's
// ZigBee channel 17 (2435 MHz); (4) transmits; the victim decodes the frame
// as if it came from its gateway.
#include <cstdio>

#include "attack/bit_extract.h"
#include "attack/carrier_allocation.h"
#include "attack/emulator.h"
#include "channel/environment.h"
#include "dsp/rng.h"
#include "dsp/stats.h"
#include "wifi/ofdm.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

int main() {
  using namespace ctc;
  dsp::Rng rng(7);

  // --- t1: the gateway sends a control message; the attacker listens. ---
  zigbee::MacFrame control;
  control.sequence = 88;
  control.dest_addr = 0x00D0;  // smart door lock
  control.payload = {'U', 'N', 'L', 'O', 'C', 'K'};
  const zigbee::Transmitter gateway;
  const cvec observed = gateway.transmit_frame(control);
  std::printf("[attacker] eavesdropped %zu samples of the ZigBee channel\n",
              observed.size());

  // --- t2: reverse-engineer WiFi symbols that emulate the waveform. ---
  attack::WaveformEmulator emulator;  // selects subcarriers, optimizes alpha
  const attack::EmulationResult emulation = emulator.emulate(observed);
  std::printf("[attacker] kept FFT bins:");
  for (std::size_t bin : emulation.kept_bins) std::printf(" %zu", bin + 1);
  std::printf(" (paper: 1-4, 62-64)\n");
  std::printf("[attacker] QAM scale alpha = %.3f, %zu WiFi symbols\n",
              emulation.diagnostics.front().alpha, emulation.symbol_grids.size());
  std::printf("[attacker] emulation NMSE vs observed waveform: %.3f\n",
              dsp::nmse(observed, emulation.emulated_4mhz));

  // --- carrier allocation: place the ZigBee band at -5 MHz in the WiFi
  //     baseband (data subcarriers [-20, -8]) and extract the WiFi bits. ---
  const attack::CarrierPlan plan;  // ZigBee ch17 @2435, WiFi @2440
  const attack::ExtractedBits bits = attack::extract_wifi_bits(
      emulation.symbol_grids, emulation.diagnostics.front().alpha, plan);
  std::printf("[attacker] subcarrier shift %d, %zu coded bits per symbol, tx gain %.2f\n",
              plan.subcarrier_shift(),
              bits.interleaved_bits_per_symbol.front().size(), bits.tx_gain);

  // Modulate the real 20 MHz WiFi waveform from the allocated grids.
  cvec wifi_waveform;
  for (const cvec& grid : emulation.symbol_grids) {
    const cvec symbol = wifi::grid_to_time(attack::allocate_to_wifi_grid(grid, plan));
    wifi_waveform.insert(wifi_waveform.end(), symbol.begin(), symbol.end());
  }
  std::printf("[attacker] transmitting %zu samples at 20 MHz on 2440 MHz\n",
              wifi_waveform.size());

  // --- the victim: ZigBee front end at 2435 MHz + AWGN channel. ---
  cvec at_victim = attack::wifi_band_to_zigbee_baseband(wifi_waveform, plan);
  at_victim.resize(observed.size());
  const cvec received =
      channel::Environment::awgn(15.0).propagate(dsp::normalize_power(at_victim), rng);

  const zigbee::Receiver victim;
  const zigbee::ReceiveResult result = victim.receive(received);
  if (result.frame_ok()) {
    std::printf("[victim]   decoded frame seq=%u payload=\"%.*s\" — door unlocked!\n",
                result.mac->sequence, static_cast<int>(result.mac->payload.size()),
                reinterpret_cast<const char*>(result.mac->payload.data()));
    std::printf("[victim]   chip Hamming distances (first 8):");
    for (std::size_t i = 0; i < 8 && i < result.hamming_distances.size(); ++i) {
      std::printf(" %zu", result.hamming_distances[i]);
    }
    std::printf("  — all under the DSSS threshold, nothing looks wrong.\n");
    return 0;
  }
  std::printf("[victim]   frame rejected (attack failed)\n");
  return 1;
}
