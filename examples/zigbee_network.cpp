// A ZigBee network exchange over the full stack: CSMA/CA channel access,
// MAC data frame with ACK request, PHY transmission through a noisy
// channel, ACK back, duplicate suppression on retransmission.
//
//   $ ./zigbee_network
//
// Exercises the MAC substrate (zigbee/mac.h, zigbee/csma.h) that the
// attack's replay rides on: note how the *MAC* accepts a replayed frame
// only until the duplicate cache catches the sequence number — which is
// why the paper's attacker replays with the victim unable to tell the
// frame's physical origin, and why the PHY-layer defense matters.
#include <cstdio>

#include "channel/environment.h"
#include "dsp/rng.h"
#include "zigbee/csma.h"
#include "zigbee/mac.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

using namespace ctc;

namespace {

// One hop over the air: serialize, CSMA, transmit, channel, receive, parse.
std::optional<zigbee::GeneralMacFrame> send_over_air(
    const zigbee::GeneralMacFrame& frame, const channel::Environment& env,
    dsp::Rng& rng, const char* who) {
  // Channel access first (idle channel oracle: nobody else transmits here).
  const zigbee::CsmaResult csma = zigbee::csma_ca([](double) { return false; }, rng);
  std::printf("[%s] CSMA grant after %.0f us (%u CCA)\n", who, csma.delay_us,
              csma.backoffs);

  const zigbee::Transmitter phy_tx;
  const zigbee::Receiver phy_rx;
  const cvec wave = phy_tx.transmit_psdu(frame.serialize());
  const cvec received = env.propagate(wave, rng);
  const auto rx = phy_rx.receive(received);
  if (!rx.phr_ok || !rx.psdu_complete) {
    std::printf("[%s] PHY drop\n", who);
    return std::nullopt;
  }
  return zigbee::GeneralMacFrame::parse(rx.psdu);
}

}  // namespace

int main() {
  dsp::Rng rng(5);
  const auto env = channel::Environment::awgn(12.0);

  zigbee::MacEntity gateway(zigbee::MacAddress::short_address(0x0001));
  zigbee::MacEntity bulb(zigbee::MacAddress::short_address(0x0042));

  // --- 1. gateway -> bulb: "ON", ACK requested ---
  const auto data = gateway.make_data_frame(bulb.address(), {'O', 'N'});
  std::printf("[gateway] sending seq=%u payload=\"ON\"\n", data.sequence);
  const auto at_bulb = send_over_air(data, env, rng, "gateway");
  if (!at_bulb) return 1;

  const auto outcome = bulb.handle(*at_bulb);
  std::printf("[bulb   ] frame %s%s\n", outcome.accepted ? "accepted" : "rejected",
              outcome.duplicate ? " (duplicate)" : "");
  if (!outcome.ack) return 1;

  // --- 2. bulb -> gateway: immediate ACK ---
  const auto ack_at_gateway = send_over_air(*outcome.ack, env, rng, "bulb   ");
  if (!ack_at_gateway) return 1;
  std::printf("[gateway] ACK for seq=%u: %s\n", ack_at_gateway->sequence,
              gateway.matches_pending(*ack_at_gateway) ? "matched" : "stale");

  // --- 3. a replayed copy of the same frame (what a naive replayer does) ---
  std::printf("\n[replay ] re-sending the captured frame verbatim...\n");
  const auto replay = send_over_air(data, env, rng, "replayer");
  if (replay) {
    const auto replay_outcome = bulb.handle(*replay);
    std::printf("[bulb   ] replayed frame %s%s — the duplicate cache catches "
                "same-sequence replays;\n"
                "          the paper's attacker therefore replays *fresh-looking* "
                "frames, which only\n          the physical layer can expose.\n",
                replay_outcome.accepted ? "accepted" : "rejected",
                replay_outcome.duplicate ? " (duplicate)" : "");
  }
  return 0;
}
