// ctc_tool — command-line front end for IQ captures (GNU Radio cf32 files).
//
//   ctc_tool generate <out.cf32> [text]      ZigBee frame -> waveform file
//   ctc_tool attack   <in.cf32> <out.cf32>   emulate an observed waveform
//   ctc_tool detect   <in.cf32>              decode + run the defense
//   ctc_tool psd      <in.cf32> [rate_hz]    spectrum summary
//
// Captures written here load directly into GNU Radio file sources (and vice
// versa), so the pipeline interoperates with real SDR recordings.
#include <cstdio>
#include <cstring>
#include <string>

#include "attack/emulator.h"
#include "defense/detector.h"
#include "dsp/iq_io.h"
#include "dsp/psd.h"
#include "dsp/stats.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

using namespace ctc;

namespace {

int cmd_generate(const char* path, const char* text) {
  zigbee::MacFrame frame;
  frame.payload.assign(text, text + std::strlen(text));
  const zigbee::Transmitter tx;
  const cvec wave = tx.transmit_frame(frame);
  dsp::write_cf32(path, wave);
  std::printf("wrote %zu samples (4 MHz baseband, payload \"%s\") to %s\n",
              wave.size(), text, path);
  return 0;
}

int cmd_attack(const char* in_path, const char* out_path) {
  const cvec observed = dsp::read_cf32(in_path);
  if (observed.empty()) {
    std::fprintf(stderr, "empty capture: %s\n", in_path);
    return 1;
  }
  attack::WaveformEmulator emulator;
  const attack::EmulationResult result = emulator.emulate(observed);
  dsp::write_cf32(out_path, result.emulated_4mhz);
  std::printf("emulated %zu WiFi symbols (alpha=%.3f, kept bins:",
              result.symbol_grids.size(), result.diagnostics.front().alpha);
  for (std::size_t bin : result.kept_bins) std::printf(" %zu", bin + 1);
  std::printf(")\nNMSE vs observed: %.4f; wrote %zu samples to %s\n",
              dsp::nmse(observed, result.emulated_4mhz),
              result.emulated_4mhz.size(), out_path);
  return 0;
}

int cmd_detect(const char* path) {
  const cvec capture = dsp::read_cf32(path);
  const zigbee::Receiver receiver;
  // Tolerate unaligned captures.
  std::size_t offset = 0;
  if (const auto found = receiver.synchronize(capture, 4000)) {
    offset = *found;
  }
  const auto rx = receiver.receive(std::span<const cplx>(capture).subspan(offset));
  std::printf("sync offset %zu | SHR %s | PHR %s | DSSS %s | FCS %s\n", offset,
              rx.shr_ok ? "ok" : "FAIL", rx.phr_ok ? "ok" : "FAIL",
              rx.psdu_complete ? "ok" : "FAIL", rx.mac ? "ok" : "FAIL");
  if (rx.mac) {
    std::printf("payload: \"%.*s\" (seq %u)\n",
                static_cast<int>(rx.mac->payload.size()),
                reinterpret_cast<const char*>(rx.mac->payload.data()),
                rx.mac->sequence);
  }
  if (rx.freq_chips.size() >= 8) {
    const defense::Detector detector;
    const auto verdict = detector.classify(rx.freq_chips);
    std::printf("defense: DE^2 = %.4f -> %s\n", verdict.distance_sq,
                verdict.is_attack ? "H1: WiFi emulation ATTACK"
                                  : "H0: authentic ZigBee transmitter");
  }
  return rx.frame_ok() ? 0 : 1;
}

int cmd_psd(const char* path, double rate_hz) {
  const cvec capture = dsp::read_cf32(path);
  dsp::PsdConfig config;
  config.sample_rate_hz = rate_hz;
  const dsp::PsdResult psd = dsp::welch_psd(capture, config);
  std::printf("PSD over %zu segments, %.0f Hz per bin\n", psd.segments_used,
              rate_hz / static_cast<double>(psd.power.size()));
  std::printf("power within +-1 MHz: %.1f%%\n",
              100.0 * dsp::band_power_fraction(psd, -1.0e6, 1.0e6));
  // Coarse 16-bucket spectrum bar chart.
  const std::size_t buckets = 16;
  const std::size_t per_bucket = psd.power.size() / buckets;
  double peak = 0.0;
  rvec bucket_power(buckets, 0.0);
  for (std::size_t b = 0; b < buckets; ++b) {
    for (std::size_t i = 0; i < per_bucket; ++i) {
      bucket_power[b] += psd.power[b * per_bucket + i];
    }
    peak = std::max(peak, bucket_power[b]);
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    const double low = psd.frequency_hz[b * per_bucket];
    const int bars = peak > 0.0 ? static_cast<int>(40.0 * bucket_power[b] / peak) : 0;
    std::printf("%+8.2f MHz |%.*s\n", low / 1e6, bars,
                "****************************************");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "generate") == 0) {
    return cmd_generate(argv[2], argc > 3 ? argv[3] : "HELLO");
  }
  if (argc >= 4 && std::strcmp(argv[1], "attack") == 0) {
    return cmd_attack(argv[2], argv[3]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "detect") == 0) {
    return cmd_detect(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "psd") == 0) {
    return cmd_psd(argv[2], argc > 3 ? std::atof(argv[3]) : 4.0e6);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s generate <out.cf32> [text]\n"
               "  %s attack <in.cf32> <out.cf32>\n"
               "  %s detect <in.cf32>\n"
               "  %s psd <in.cf32> [rate_hz]\n",
               argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
