// The constellation higher-order-statistics defense (Sec. VI).
//
//   $ ./defense_demo
//
// Calibrates the DE^2 threshold from labeled training frames (the paper's
// procedure: 50 frames per class), then classifies held-out traffic from
// both an authentic gateway and a WiFi emulation attacker. Training batches
// run on the parallel trial engine; results are identical at any
// CTC_THREADS setting because each frame draws its own RNG stream.
#include <cstdio>

#include "defense/detector.h"
#include "sim/defense_run.h"
#include "sim/engine.h"
#include "sim/link.h"
#include "zigbee/app.h"

int main() {
  using namespace ctc;
  sim::TrialEngine engine({/*seed=*/21});
  const auto frames = zigbee::make_text_workload(100);

  // Two links into the same receiver at 12 dB.
  sim::LinkConfig authentic_config;
  authentic_config.environment = channel::Environment::awgn(12.0);
  sim::LinkConfig attack_config = authentic_config;
  attack_config.kind = sim::LinkKind::emulated;
  const sim::Link gateway(authentic_config);
  const sim::Link attacker(attack_config);

  // --- calibration phase -------------------------------------------------
  defense::Detector extractor;  // default config, used for features only
  const auto train_auth = sim::collect_defense_samples(gateway, frames, 50,
                                                       extractor, engine);
  const auto train_att = sim::collect_defense_samples(attacker, frames, 50,
                                                      extractor, engine);
  std::printf("training: authentic DE^2 in [%.4f, %.4f], emulated in [%.4f, %.4f]\n",
              train_auth.min_distance(), train_auth.max_distance(),
              train_att.min_distance(), train_att.max_distance());
  const double threshold = defense::Detector::calibrate_threshold(
      train_auth.distances, train_att.distances);
  std::printf("calibrated threshold Q = %.4f (paper uses 0.5 on their hardware)\n\n",
              threshold);

  // --- detection phase ----------------------------------------------------
  defense::DetectorConfig config;
  config.threshold = threshold;
  const defense::Detector detector(config);

  dsp::Rng rng = engine.stream();
  int correct = 0;
  int total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const bool attack_turn = trial % 2 == 1;
    const sim::Link& link = attack_turn ? attacker : gateway;
    const auto observation = link.send(frames[trial], rng);
    if (observation.rx.freq_chips.size() < 8) continue;
    const defense::Verdict verdict = detector.classify(observation.rx.freq_chips);
    const bool right = verdict.is_attack == attack_turn;
    correct += right;
    ++total;
    std::printf("frame %2d from %-8s  DE^2 = %6.4f  -> %-9s %s\n", trial,
                attack_turn ? "ATTACKER" : "gateway", verdict.distance_sq,
                verdict.is_attack ? "H1 attack" : "H0 ok",
                right ? "" : "  (WRONG)");
  }
  std::printf("\ndetection accuracy: %d/%d\n", correct, total);
  return correct == total ? 0 : 1;
}
