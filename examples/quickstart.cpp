// Quickstart: send one ZigBee frame over a noisy channel and decode it.
//
//   $ ./quickstart
//
// Shows the minimal public API surface: build a MAC frame, run the 802.15.4
// transmitter, push the waveform through an AWGN channel, decode at the
// receiver, and inspect the result.
#include <cstdio>

#include "channel/environment.h"
#include "dsp/rng.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

int main() {
  using namespace ctc;

  // 1. Build a MAC data frame carrying an application payload.
  zigbee::MacFrame frame;
  frame.sequence = 1;
  frame.dest_addr = 0x0042;                      // the smart light bulb
  frame.src_addr = 0x0001;                       // the ZigBee gateway
  frame.payload = {'h', 'e', 'l', 'l', 'o'};

  // 2. Transmit: PPDU framing, DSSS spreading, half-sine O-QPSK at 4 MHz.
  const zigbee::Transmitter transmitter;
  const cvec waveform = transmitter.transmit_frame(frame);
  std::printf("transmitted %zu baseband samples (%.1f us)\n", waveform.size(),
              static_cast<double>(waveform.size()) / 4.0);

  // 3. Channel: AWGN at 12 dB SNR.
  dsp::Rng rng(1);
  const auto environment = channel::Environment::awgn(12.0);
  const cvec received = environment.propagate(waveform, rng);

  // 4. Receive: synchronization is implicit (frame-aligned capture here);
  //    the receiver equalizes, demodulates, despreads and checks the FCS.
  const zigbee::Receiver receiver;  // default profile: USRP-like chain
  const zigbee::ReceiveResult result = receiver.receive(received);

  std::printf("SHR detected: %s, PHR ok: %s, all symbols in threshold: %s\n",
              result.shr_ok ? "yes" : "no", result.phr_ok ? "yes" : "no",
              result.psdu_complete ? "yes" : "no");
  if (result.mac) {
    std::printf("decoded frame seq=%u payload=\"%.*s\" (FCS ok)\n",
                result.mac->sequence, static_cast<int>(result.mac->payload.size()),
                reinterpret_cast<const char*>(result.mac->payload.data()));
  } else {
    std::printf("frame did not decode\n");
    return 1;
  }
  return 0;
}
