// ctc_sentry — always-on streaming detection service CLI.
//
// Runs N sentry channels (SPSC ring -> online frame sync -> streaming
// cumulant detector) sharded across worker threads, fed either by a cf32
// capture replay or by a live attack/benign traffic generator:
//
//   ctc_sentry replay --capture=air.cf32 [--repeat=N] [--rate=S]
//   ctc_sentry live   [--frames=N] [--attack-every=K] [--snr-db=X]
//                     [--capture-out=air.cf32]
//
// The verdict stream (one JSON line per decoded frame, schema in
// docs/SENTRY.md) goes to stdout or --verdicts=FILE; everything human goes
// to stderr, so `ctc_sentry replay ... > verdicts.jsonl` is clean. Replay
// verdicts are bit-identical across runs and shard counts — the CI gate
// tools/sentry_determinism.sh diffs exactly this output.
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dsp/iq_io.h"
#include "sentry/service.h"
#include "sim/telemetry.h"

namespace {

using namespace ctc;

struct CliOptions {
  bool live = false;
  // common
  std::size_t channels = 1;
  std::size_t shards = 1;
  std::string verdicts_path;  // empty = stdout
  std::size_t ring = std::size_t{1} << 15;
  std::size_t ingest_block = 4096;
  std::size_t drain_block = 4096;
  double rate = 0.0;  // samples/sec; 0 = unthrottled
  double threshold = 0.2;
  std::size_t max_psdu = zigbee::kMaxPsduBytes;
  std::uint64_t seed = 0x5EA15EA1;
  std::uint64_t snapshot_every_ms = 0;  // 0 = no snapshots
  sentry::DrainScheduler scheduler =
      sentry::DrainScheduler::deficit_round_robin;
  bool telemetry = false;
  std::string telemetry_out;
  // replay
  std::string capture_path;
  std::size_t repeat = 1;
  // live
  std::size_t frames = 64;
  std::size_t attack_every = 3;
  double snr_db = 15.0;
  std::size_t gap = 512;
  std::size_t payload = 20;
  std::string capture_out;
};

[[noreturn]] void usage(int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fputs(
      "usage: ctc_sentry <replay|live> [options]\n"
      "\n"
      "modes:\n"
      "  replay --capture=FILE   stream a cf32 IQ capture through the sentry\n"
      "  live                    synthesize an attack/benign frame mix\n"
      "\n"
      "common options:\n"
      "  --channels=N        independent channels to monitor (default 1)\n"
      "  --shards=N          worker threads channels shard across (default 1)\n"
      "  --verdicts=FILE     verdict JSONL destination (default stdout)\n"
      "  --ring=N            SPSC ring capacity in samples, power of two\n"
      "                      (default 32768)\n"
      "  --ingest-block=N    samples pulled from the source per step (4096)\n"
      "  --drain-block=N     samples handed to the scanner per step (4096);\n"
      "                      smaller than --ingest-block forces overload\n"
      "  --sched=MODE        drain scheduler: drr (deficit round-robin,\n"
      "                      default) or lockstep (shard-invariant overload\n"
      "                      reference; see docs/SENTRY.md)\n"
      "  --rate=S            pace ingestion to S samples/sec (default: as\n"
      "                      fast as possible)\n"
      "  --threshold=Q       detector DE^2 threshold (default 0.2)\n"
      "  --max-psdu=N        largest PSDU the scanner waits for (default 127)\n"
      "  --seed=N            stream seed for the live generator\n"
      "  --snapshot-every-ms=N  print a live counter snapshot JSON line to\n"
      "                      stderr every N ms while running\n"
      "  --telemetry         print the per-stage telemetry summary to stderr\n"
      "  --telemetry-out=FILE  write full telemetry JSON to FILE\n"
      "\n"
      "replay options:\n"
      "  --capture=FILE      cf32 capture to replay (required)\n"
      "  --repeat=N          replay the capture N times (default 1)\n"
      "\n"
      "live options:\n"
      "  --frames=N          frames per channel (default 64)\n"
      "  --attack-every=K    every K-th frame is WiFi-emulated; 0 = none\n"
      "                      (default 3)\n"
      "  --snr-db=X          AWGN channel SNR (default 15)\n"
      "  --gap=N             idle samples between frames (default 512)\n"
      "  --payload=N         MAC payload bytes per frame (default 20)\n"
      "  --capture-out=FILE  write channel 0's stream to a cf32 capture\n",
      out);
  std::exit(code);
}

bool flag_value(int argc, char** argv, int& i, const char* name,
                const char** out) {
  const std::size_t len = std::strlen(name);
  const char* arg = argv[i];
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s expects a value\n", name);
      std::exit(2);
    }
    *out = argv[++i];
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "invalid value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

double parse_double(const char* text, const char* flag) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "invalid value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return value;
}

CliOptions parse_cli(int argc, char** argv) {
  if (argc < 2) usage(2);
  CliOptions options;
  if (std::strcmp(argv[1], "replay") == 0) {
    options.live = false;
  } else if (std::strcmp(argv[1], "live") == 0) {
    options.live = true;
  } else if (std::strcmp(argv[1], "--help") == 0 ||
             std::strcmp(argv[1], "-h") == 0) {
    usage(0);
  } else {
    std::fprintf(stderr, "unknown mode: %s (try --help)\n", argv[1]);
    std::exit(2);
  }

  for (int i = 2; i < argc; ++i) {
    const char* value = nullptr;
    const auto size_flag = [&](const char* name, std::size_t& field) {
      if (!flag_value(argc, argv, i, name, &value)) return false;
      field = static_cast<std::size_t>(parse_u64(value, name));
      return true;
    };
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(0);
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      options.telemetry = true;
    } else if (flag_value(argc, argv, i, "--telemetry-out", &value)) {
      options.telemetry_out = value;
    } else if (flag_value(argc, argv, i, "--verdicts", &value)) {
      options.verdicts_path = value;
    } else if (flag_value(argc, argv, i, "--capture", &value)) {
      options.capture_path = value;
    } else if (flag_value(argc, argv, i, "--capture-out", &value)) {
      options.capture_out = value;
    } else if (flag_value(argc, argv, i, "--rate", &value)) {
      options.rate = parse_double(value, "--rate");
    } else if (flag_value(argc, argv, i, "--threshold", &value)) {
      options.threshold = parse_double(value, "--threshold");
    } else if (flag_value(argc, argv, i, "--snr-db", &value)) {
      options.snr_db = parse_double(value, "--snr-db");
    } else if (flag_value(argc, argv, i, "--seed", &value)) {
      options.seed = parse_u64(value, "--seed");
    } else if (flag_value(argc, argv, i, "--snapshot-every-ms", &value)) {
      options.snapshot_every_ms = parse_u64(value, "--snapshot-every-ms");
    } else if (flag_value(argc, argv, i, "--sched", &value)) {
      if (std::strcmp(value, "drr") == 0) {
        options.scheduler = sentry::DrainScheduler::deficit_round_robin;
      } else if (std::strcmp(value, "lockstep") == 0) {
        options.scheduler = sentry::DrainScheduler::lockstep;
      } else {
        std::fprintf(stderr, "invalid value for --sched: %s "
                             "(drr or lockstep)\n", value);
        std::exit(2);
      }
    } else if (size_flag("--channels", options.channels) ||
               size_flag("--shards", options.shards) ||
               size_flag("--ring", options.ring) ||
               size_flag("--ingest-block", options.ingest_block) ||
               size_flag("--drain-block", options.drain_block) ||
               size_flag("--max-psdu", options.max_psdu) ||
               size_flag("--repeat", options.repeat) ||
               size_flag("--frames", options.frames) ||
               size_flag("--attack-every", options.attack_every) ||
               size_flag("--gap", options.gap) ||
               size_flag("--payload", options.payload)) {
      // handled
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  if (!options.live && options.capture_path.empty()) {
    std::fprintf(stderr, "replay mode requires --capture=FILE\n");
    std::exit(2);
  }
  if (options.live && options.capture_out.size() && options.channels < 1) {
    std::fprintf(stderr, "--capture-out needs at least one channel\n");
    std::exit(2);
  }
  return options;
}

/// Tees one channel's stream into a buffer so `live --capture-out` can
/// persist exactly what the sentry saw.
class TeeSource : public sentry::SampleSource {
 public:
  TeeSource(std::unique_ptr<sentry::SampleSource> inner, cvec& sink)
      : inner_(std::move(inner)), sink_(sink) {}

  std::size_t next_block(std::span<cplx> out) override {
    const std::size_t got = inner_->next_block(out);
    sink_.insert(sink_.end(), out.begin(),
                 out.begin() + static_cast<std::ptrdiff_t>(got));
    return got;
  }

 private:
  std::unique_ptr<sentry::SampleSource> inner_;
  cvec& sink_;
};

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_cli(argc, argv);
  sim::telemetry::set_enabled(options.telemetry ||
                              !options.telemetry_out.empty());

  sentry::ServiceConfig config;
  config.channels = options.channels;
  config.shards = options.shards;
  config.scheduler = options.scheduler;
  config.channel.ring_capacity = options.ring;
  config.channel.ingest_block = options.ingest_block;
  config.channel.drain_block = options.drain_block;
  config.channel.scanner.detector.threshold = options.threshold;
  config.channel.scanner.max_psdu_bytes = options.max_psdu;

  // Shared capture for replay mode (loaded once, reused by every channel);
  // tee sink for live --capture-out.
  std::shared_ptr<const cvec> capture;
  if (!options.live) {
    capture = std::make_shared<const cvec>(
        dsp::read_cf32(options.capture_path));
    std::fprintf(stderr, "ctc_sentry: replaying %zu samples x%zu across %zu "
                         "channel(s), %zu shard(s)\n",
                 capture->size(), options.repeat, options.channels,
                 options.shards);
  } else {
    std::fprintf(stderr, "ctc_sentry: live mix, %zu frame(s)/channel, attack "
                         "every %zu, %.1f dB SNR, %zu channel(s), %zu "
                         "shard(s)\n",
                 options.frames, options.attack_every, options.snr_db,
                 options.channels, options.shards);
  }
  auto capture_sink = std::make_shared<cvec>();

  sentry::LinkSourceConfig live_config;
  live_config.environment = channel::Environment::awgn(options.snr_db);
  live_config.frames = options.frames;
  live_config.attack_every = options.attack_every;
  live_config.gap_samples = options.gap;
  live_config.payload_bytes = options.payload;
  live_config.seed = options.seed;

  const bool want_capture = options.live && !options.capture_out.empty();
  sentry::SentryService service(
      config,
      [&options, capture, live_config, capture_sink,
       want_capture](std::size_t channel)
          -> std::unique_ptr<sentry::SampleSource> {
        std::unique_ptr<sentry::SampleSource> source;
        if (capture) {
          source = std::make_unique<sentry::ReplaySource>(*capture,
                                                          options.repeat);
        } else {
          source = std::make_unique<sentry::LinkSource>(live_config, channel);
        }
        if (want_capture && channel == 0) {
          source = std::make_unique<TeeSource>(std::move(source),
                                               *capture_sink);
        }
        if (options.rate > 0.0) {
          source = std::make_unique<sentry::RateLimitedSource>(
              std::move(source), options.rate);
        }
        return source;
      });

  service.start();

  // Periodic live snapshot endpoint: one counters JSON line to stderr.
  std::thread snapshot_thread;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  if (options.snapshot_every_ms > 0) {
    snapshot_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(done_mutex);
      while (!done_cv.wait_for(
          lock, std::chrono::milliseconds(options.snapshot_every_ms),
          [&] { return done; })) {
        std::fprintf(stderr, "%s\n",
                     service.counters().snapshot_json().c_str());
      }
    });
  }

  const sentry::ServiceReport report = service.join();
  if (snapshot_thread.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(done_mutex);
      done = true;
    }
    done_cv.notify_all();
    snapshot_thread.join();
  }

  // Verdict stream: stdout by default, or --verdicts=FILE.
  if (options.verdicts_path.empty()) {
    std::fputs(report.verdicts_jsonl.c_str(), stdout);
  } else {
    std::FILE* file = std::fopen(options.verdicts_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.verdicts_path.c_str());
      return 1;
    }
    std::fputs(report.verdicts_jsonl.c_str(), file);
    std::fclose(file);
  }

  if (want_capture) {
    dsp::write_cf32(options.capture_out, *capture_sink);
    std::fprintf(stderr, "capture written to %s (%zu samples)\n",
                 options.capture_out.c_str(), capture_sink->size());
  }

  std::fprintf(stderr,
               "%s\n"
               "ctc_sentry: %" PRIu64 " samples in, %" PRIu64 " dropped, %"
               PRIu64 " verdict(s), %" PRIu64 " attack(s)\n",
               service.counters().snapshot_json().c_str(),
               report.total_ingested(), report.total_dropped(),
               report.total_verdicts(), report.total_attacks());

  if (sim::telemetry::enabled()) {
    const auto metrics = sim::telemetry::collect();
    const std::string deterministic =
        sim::telemetry::to_json(metrics, /*include_timers=*/false);
    std::fprintf(stderr, "%s\n", deterministic.c_str());
    if (!options.telemetry_out.empty()) {
      const std::string full =
          sim::telemetry::to_json(metrics, /*include_timers=*/true);
      if (std::FILE* file = std::fopen(options.telemetry_out.c_str(), "w")) {
        std::fputs(full.c_str(), file);
        std::fputc('\n', file);
        std::fclose(file);
      } else {
        std::fprintf(stderr, "cannot write telemetry to %s\n",
                     options.telemetry_out.c_str());
      }
    }
  }
  return 0;
}
