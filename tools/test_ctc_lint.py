#!/usr/bin/env python3
"""Unit tests for ctc_lint.py: every rule must fire on a seeded violation
fixture and stay silent on the idiomatic clean counterpart, and the real
tree must lint clean.

Run directly (python3 tools/test_ctc_lint.py) or via ctest
(tools.ctc_lint_py)."""

import json
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOLS_DIR.parent
CTC_LINT = TOOLS_DIR / "ctc_lint.py"
GEN_HEADER_CHECKS = TOOLS_DIR / "lint" / "gen_header_checks.py"

sys.path.insert(0, str(TOOLS_DIR))
from lint import framework, layering, registries  # noqa: E402


def make_tree(files):
    """{rel: source} -> [SourceFile], sorted like load_tree would."""
    return [framework.SourceFile(rel, text)
            for rel, text in sorted(files.items())]


def rules_of(findings):
    return sorted({f.rule for f in findings})


SPEC_FIXTURE = {
    "layers": {
        "telemetry": {"paths": ["src/sim/telemetry.h"], "deps": []},
        "dsp": {"paths": ["src/dsp/"], "deps": []},
        "zigbee": {"paths": ["src/zigbee/"], "deps": ["dsp"]},
        "sim": {"paths": ["src/sim/"], "deps": ["dsp", "zigbee", "telemetry"]},
    },
    "consumers": {"paths": ["tests/"]},
}


def load_fixture_spec(spec=None):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "layers.json"
        path.write_text(json.dumps(spec or SPEC_FIXTURE))
        return layering.load_spec(path)


class LayerDepTest(unittest.TestCase):
    def setUp(self):
        self.spec = load_fixture_spec()

    def deps(self, files):
        return layering.check_layer_deps(make_tree(files), self.spec)

    def test_declared_edge_passes(self):
        findings = self.deps(
            {"src/zigbee/receiver.cpp": '#include "dsp/fft.h"\n'})
        self.assertEqual(findings, [])

    def test_undeclared_edge_fires(self):
        findings = self.deps(
            {"src/zigbee/receiver.cpp": '#include "sim/link.h"\n'})
        self.assertEqual(rules_of(findings), ["layer-dep"])
        self.assertIn("UPWARD", findings[0].message)

    def test_sideways_undeclared_edge_is_not_upward(self):
        findings = self.deps(
            {"src/dsp/fft.cpp": '#include "sim/telemetry.h"\n'})
        self.assertEqual(rules_of(findings), ["layer-dep"])
        self.assertIn("undeclared cross-layer edge", findings[0].message)

    def test_carved_out_telemetry_wins_longest_prefix(self):
        # telemetry is declared for sim but carved out of it: a zigbee file
        # including telemetry is a finding (zigbee declares only dsp), while
        # a sim file including it is fine.
        findings = self.deps(
            {"src/zigbee/mod.cpp": '#include "sim/telemetry.h"\n',
             "src/sim/engine.h": '#include "sim/telemetry.h"\n'})
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].path, "src/zigbee/mod.cpp")

    def test_intra_layer_and_system_includes_pass(self):
        findings = self.deps(
            {"src/dsp/fft.cpp":
             '#include <vector>\n#include "dsp/types.h"\n'})
        self.assertEqual(findings, [])

    def test_consumer_may_include_any_layer(self):
        findings = self.deps(
            {"tests/sim/engine_test.cpp":
             '#include "sim/link.h"\n#include "dsp/fft.h"\n'})
        self.assertEqual(findings, [])

    def test_unmapped_src_file_fires(self):
        findings = self.deps({"src/newthing/widget.cpp": "int x;\n"})
        self.assertEqual(rules_of(findings), ["layer-unmapped"])

    def test_waiver_suppresses_both_spellings(self):
        for spelling in ("ctc-lint", "det-lint"):
            findings = self.deps(
                {"src/zigbee/receiver.cpp":
                 f'#include "sim/link.h"  // {spelling}: allow(layer-dep)\n'})
            self.assertEqual(findings, [], msg=spelling)


class LayerCycleTest(unittest.TestCase):
    def test_cyclic_spec_fires(self):
        spec = load_fixture_spec({
            "layers": {
                "a": {"paths": ["src/a/"], "deps": ["b"]},
                "b": {"paths": ["src/b/"], "deps": ["a"]},
            },
            "consumers": {"paths": []},
        })
        findings = layering.check_spec_acyclic(spec)
        self.assertEqual(rules_of(findings), ["layer-cycle"])

    def test_real_spec_is_acyclic(self):
        self.assertEqual(layering.check_spec_acyclic(layering.load_spec()), [])

    def cycle_findings(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            for rel, text in files.items():
                path = root / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text)
            tree = framework.load_tree(root)
            return layering.check_include_cycles(
                tree, root, [root / "src"])

    def test_include_cycle_fires_once(self):
        findings = self.cycle_findings({
            "src/dsp/a.h": '#include "dsp/b.h"\n',
            "src/dsp/b.h": '#include "dsp/a.h"\n',
        })
        self.assertEqual(rules_of(findings), ["layer-cycle"])
        self.assertEqual(len(findings), 1)
        self.assertIn("src/dsp/a.h -> src/dsp/b.h -> src/dsp/a.h",
                      findings[0].message)

    def test_acyclic_includes_pass(self):
        findings = self.cycle_findings({
            "src/dsp/a.h": '#include "dsp/b.h"\n',
            "src/dsp/b.h": "#pragma once\n",
        })
        self.assertEqual(findings, [])


KERNELS_H = """\
struct KernelTable {
  // -- FIR (tolerance) --
  void (*fir_mac)(int);
  // -- packed (bitwise, integer) --
  int (*match16)(int);
};
"""
KERNELS_SCALAR = ".fir_mac = scalar_fir,\n.match16 = scalar_match,\n"
KERNELS_AVX2 = ".fir_mac = avx2_fir,\n.match16 = scalar_impl::match16,\n"
KERNELS_TEST = "fir_mac(1); match16(2);\n"
KERNELS_DOC = "| `fir_mac` | tolerance | FIR |\n| `match16` | bitwise | corr |\n"


class KernelRegistryTest(unittest.TestCase):
    def findings(self, header=KERNELS_H, scalar=KERNELS_SCALAR,
                 avx2=KERNELS_AVX2, test=KERNELS_TEST, doc=KERNELS_DOC):
        tree = make_tree({
            registries.KERNELS_HEADER: header,
            registries.KERNEL_TABLES[0]: scalar,
            registries.KERNEL_TABLES[1]: avx2,
            registries.KERNEL_TEST: test,
        })
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "docs").mkdir()
            (root / "docs" / "PERFORMANCE.md").write_text(doc)
            return registries.check_kernel_registry(tree, root)

    def test_complete_registry_passes(self):
        self.assertEqual(self.findings(), [])

    def test_missing_avx2_registration_fires(self):
        findings = self.findings(avx2=".fir_mac = avx2_fir,\n")
        self.assertEqual(rules_of(findings), ["kernel-registry"])
        self.assertIn("match16", findings[0].message)
        self.assertIn("kernels_avx2", findings[0].message)

    def test_missing_test_reference_fires(self):
        findings = self.findings(test="fir_mac(1);\n")
        self.assertEqual(rules_of(findings), ["kernel-registry"])
        self.assertIn("no reference", findings[0].message)

    def test_unannotated_section_fires(self):
        header = ("struct KernelTable {\n"
                  "  // -- mystery section --\n"
                  "  void (*fir_mac)(int);\n};\n")
        findings = self.findings(
            header=header, scalar=".fir_mac = a,\n", avx2=".fir_mac = b,\n",
            test="fir_mac(1);\n", doc="| `fir_mac` | tolerance | FIR |\n")
        self.assertEqual(rules_of(findings), ["kernel-registry"])
        self.assertIn("no annotated section", findings[0].message)

    def test_doc_class_mismatch_fires(self):
        doc = "| `fir_mac` | bitwise | FIR |\n| `match16` | bitwise | c |\n"
        findings = self.findings(doc=doc)
        self.assertEqual(rules_of(findings), ["kernel-registry"])
        self.assertIn("must agree", findings[0].message)

    def test_missing_doc_table_fires(self):
        findings = self.findings(doc="prose, no table\n")
        self.assertEqual(rules_of(findings), ["kernel-registry"])

    def test_real_kernels_header_parses_fully(self):
        header = framework.SourceFile.load(
            REPO_ROOT / registries.KERNELS_HEADER, registries.KERNELS_HEADER)
        members = registries.parse_kernel_table(header)
        self.assertGreaterEqual(len(members), 18)
        self.assertTrue(all(cls in ("bitwise", "tolerance")
                            for _, _, cls in members))


class SchemaDocsTest(unittest.TestCase):
    EMITTER = ('constexpr int kSchemaVersion = 2;\n'
               'void dump() {\n'
               '  out += "\\"widget_schema\\":2,";\n'
               '  out += "\\"frames\\":" + n;\n'
               '}\n')
    DOC = ('The widget stream (`"widget_schema": 2`) emits `frames`\n'
           'per record.\n')

    def findings(self, emitter=EMITTER, doc=DOC):
        tree = make_tree({"src/sim/widget.cpp": emitter})
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "docs").mkdir()
            (root / "docs" / "WIDGET.md").write_text(doc)
            return registries.check_schema_docs(tree, root)

    def test_documented_schema_passes(self):
        self.assertEqual(self.findings(), [])

    def test_undocumented_schema_fires(self):
        findings = self.findings(doc="nothing relevant\n")
        self.assertEqual(rules_of(findings), ["schema-docs"])
        self.assertIn("documented nowhere", findings[0].message)

    def test_version_mismatch_fires(self):
        doc = self.DOC.replace(": 2", ": 1")
        findings = self.findings(doc=doc)
        self.assertEqual(rules_of(findings), ["schema-docs"])
        self.assertIn("version 2 in code but 1", findings[0].message)

    def test_missing_field_fires(self):
        doc = 'The widget stream (`"widget_schema": 2`), fields vary.\n'
        findings = self.findings(doc=doc)
        self.assertEqual(rules_of(findings), ["schema-docs"])
        self.assertIn("'frames'", findings[0].message)

    def test_set_call_keys_are_extracted(self):
        emitter = ('out.set("widget_schema", Json(kSchemaVersion));\n'
                   'out.set("frames", Json(n));\n'
                   'constexpr int kSchemaVersion = 2;\n')
        self.assertEqual(self.findings(emitter=emitter), [])


class TelemetryRegistryTest(unittest.TestCase):
    def findings(self, source, doc):
        tree = make_tree({"src/zigbee/mod.cpp": source})
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "docs").mkdir()
            (root / "docs" / "TELEMETRY.md").write_text(doc)
            return registries.check_telemetry_registry(tree, root)

    def test_documented_family_passes(self):
        findings = self.findings(
            'CTC_TELEM_COUNT("zigbee_tx", "frames", 1);\n',
            "| `zigbee_tx/frames` | counter | frames |\n")
        self.assertEqual(findings, [])

    def test_undocumented_family_fires(self):
        findings = self.findings(
            'CTC_TELEM_GAUGE("zigbee_tx", "mystery", v);\n',
            "| `zigbee_tx/frames` | counter | frames |\n")
        self.assertEqual(rules_of(findings), ["telemetry-registry"])
        self.assertIn("zigbee_tx/mystery", findings[0].message)

    def test_waiver_suppresses(self):
        findings = self.findings(
            'CTC_TELEM_COUNT("zigbee_tx", "tmp", 1);'
            "  // ctc-lint: allow(telemetry-registry)\n",
            "unrelated\n")
        self.assertEqual(findings, [])


class StreamIdsTest(unittest.TestCase):
    REGISTRY = {
        "src/sim/engine.h": {"namespace": "engine-trial", "scheme": "x"},
    }

    def test_registered_site_passes(self):
        tree = make_tree({"src/sim/engine.h": "rng.for_stream(seed, i);\n"})
        self.assertEqual(
            registries.check_stream_ids(tree, self.REGISTRY), [])

    def test_unregistered_site_fires(self):
        tree = make_tree({"src/mesh/field.cpp": "for_stream(seed, s);\n",
                          "src/sim/engine.h": "for_stream(seed, i);\n"})
        findings = registries.check_stream_ids(tree, self.REGISTRY)
        self.assertEqual(rules_of(findings), ["stream-ids"])
        self.assertEqual(findings[0].path, "src/mesh/field.cpp")

    def test_namespace_collision_fires(self):
        registry = {
            "src/sim/engine.h": {"namespace": "engine-trial", "scheme": "x"},
            "src/mesh/field.cpp": {"namespace": "engine-trial", "scheme": "y"},
        }
        tree = make_tree({"src/sim/engine.h": "for_stream(seed, i);\n",
                          "src/mesh/field.cpp": "for_stream(seed, s);\n"})
        findings = registries.check_stream_ids(tree, registry)
        self.assertEqual(rules_of(findings), ["stream-ids"])
        self.assertTrue(any("collide" in f.message for f in findings))

    def test_stale_registry_entry_fires(self):
        tree = make_tree({"src/sim/engine.h": "no rng here\n"})
        findings = registries.check_stream_ids(tree, self.REGISTRY)
        self.assertEqual(rules_of(findings), ["stream-ids"])
        self.assertIn("stale", findings[0].message)

    def test_real_registry_matches_real_call_sites(self):
        tree = framework.load_tree(REPO_ROOT)
        self.assertEqual(registries.check_stream_ids(tree), [])


class HeaderSelfcheckTest(unittest.TestCase):
    def run_gen(self, headers):
        if shutil.which("c++") is None:
            self.skipTest("no c++ compiler on PATH")
        with tempfile.TemporaryDirectory() as tmp:
            src = Path(tmp) / "src"
            for rel, text in headers.items():
                path = src / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text)
            return subprocess.run(
                [sys.executable, str(GEN_HEADER_CHECKS),
                 "--src", str(src), "--compile"],
                capture_output=True, text=True)

    def test_self_sufficient_header_passes(self):
        result = self.run_gen({
            "dsp/good.h":
            "#pragma once\n#include <vector>\n"
            "inline std::vector<int> v() { return {}; }\n"})
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_non_self_sufficient_header_fires(self):
        result = self.run_gen({
            "dsp/bad.h":
            "#pragma once\ninline std::vector<int> v() { return {}; }\n"})
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("header-selfcheck", result.stdout)

    def test_missing_include_guard_fires(self):
        result = self.run_gen({
            "dsp/unguarded.h": "struct Twice {};\n"})
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)


class CliTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(CTC_LINT), "--root", str(REPO_ROOT)],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0,
                         msg=result.stdout + result.stderr)
        self.assertIn("OK", result.stdout)

    def test_list_rules(self):
        result = subprocess.run(
            [sys.executable, str(CTC_LINT), "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0)
        for rule in ("layer-dep", "kernel-registry", "schema-docs",
                     "telemetry-registry", "stream-ids"):
            self.assertIn(rule, result.stdout)

    def test_report_file_and_file_filter(self):
        with tempfile.TemporaryDirectory() as tmp:
            report = Path(tmp) / "findings.txt"
            result = subprocess.run(
                [sys.executable, str(CTC_LINT), "--root", str(REPO_ROOT),
                 "--report", str(report),
                 str(REPO_ROOT / "src/dsp/fft.h")],
                capture_output=True, text=True)
            self.assertEqual(result.returncode, 0,
                             msg=result.stdout + result.stderr)
            self.assertTrue(report.is_file())
            self.assertIn("ctc_lint", report.read_text())


if __name__ == "__main__":
    unittest.main()
