#!/usr/bin/env python3
"""clang-tidy runner driven by a CMake compilation database.

Lints every first-party translation unit under src/ (plus, with --all,
bench/ tools/ tests/ examples/) using the repo's .clang-tidy profile and the
exact compile flags CMake exported to compile_commands.json, so macro
definitions (CTC_TELEMETRY_DISABLED, sanitizer flags) match the real build.

Exit status:
  0   clean
  1   clang-tidy reported findings
  2   usage / database problems
  77  clang-tidy is not installed (ctest maps this to SKIPPED via
      SKIP_RETURN_CODE so local checkouts without LLVM stay green; the CI
      lint job installs clang-tidy and enforces a clean run)

Usage:
  run_clang_tidy.py [--build-dir BUILD] [--all] [--jobs N] [--clang-tidy BIN]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import shutil
import subprocess
import sys
from pathlib import Path

SKIP_EXIT = 77
DEFAULT_SCOPE = ("/src/",)
FULL_SCOPE = ("/src/", "/bench/", "/tools/", "/tests/", "/examples/")


def find_database(build_dir: Path) -> Path:
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        print(f"run_clang_tidy: {database} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (every preset does)",
              file=sys.stderr)
        sys.exit(2)
    return database


def select_sources(database: Path, scopes) -> list:
    entries = json.loads(database.read_text())
    repo_root = Path(__file__).resolve().parent.parent
    sources = []
    for entry in entries:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        text = path.as_posix()
        if not text.startswith(repo_root.as_posix() + "/"):
            continue  # third-party / generated
        if any(scope in text for scope in scopes):
            sources.append(text)
    return sorted(set(sources))


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="build tree with compile_commands.json")
    parser.add_argument("--all", action="store_true",
                        help="lint bench/tools/tests/examples too (default: "
                             "src/ only, the zero-findings surface)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count()),
                        help="parallel clang-tidy processes")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    args = parser.parse_args(argv)

    binary = shutil.which(args.clang_tidy)
    if binary is None:
        print(f"run_clang_tidy: SKIPPED — '{args.clang_tidy}' not found in "
              "PATH (install clang-tidy to enable this check)")
        return SKIP_EXIT

    database = find_database(Path(args.build_dir))
    scopes = FULL_SCOPE if args.all else DEFAULT_SCOPE
    sources = select_sources(database, scopes)
    if not sources:
        print("run_clang_tidy: no first-party sources matched the database",
              file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {binary} over {len(sources)} TUs "
          f"(-p {args.build_dir}, jobs={args.jobs})")

    failures = 0
    batch = max(1, args.jobs)
    running = []

    def reap(block: bool) -> None:
        nonlocal failures
        still = []
        for proc, name in running:
            if not block and proc.poll() is None:
                still.append((proc, name))
                continue
            out, _ = proc.communicate()
            if proc.returncode != 0:
                failures += 1
                sys.stdout.write(out)
                print(f"run_clang_tidy: FINDINGS in {name}")
        running[:] = still

    for source in sources:
        while len(running) >= batch:
            reap(block=False)
            if len(running) >= batch:
                running[0][0].wait()
        proc = subprocess.Popen(
            [binary, "-p", str(args.build_dir), "--quiet", source],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        running.append((proc, source))
    reap(block=True)

    if failures:
        print(f"run_clang_tidy: {failures} TU(s) with findings",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: OK ({len(sources)} TUs clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
