#!/usr/bin/env python3
"""Append bench JSON reports to a trajectory file and gate on regressions.

The bench binaries emit a one-line JSON report with ``--json`` (and a richer
telemetry document with ``--telemetry-out``).  This tool maintains the
machine-readable *trajectory* of those reports across CI runs so throughput
changes are visible over time, and fails the build when the latest
``perf_engine`` run regresses too far.

Subcommands
-----------
append   Read one run report (a file whose last non-empty line is the JSON
         object a bench printed) and append it to the trajectory file::

             ./build/bench/perf_engine --trials=120 --json | tail -n1 > run.json
             python3 tools/bench_trajectory.py append \
                 --run run.json --trajectory BENCH_telemetry.json --label "$SHA"

check    Gate: compute perf_engine throughput (trials / wall_ms_wide) for
         every run in the trajectory and compare the latest against the best
         earlier run.  Exits non-zero when the latest throughput dropped by
         more than ``--max-regression`` (default 0.25, i.e. >25% slower)::

             python3 tools/bench_trajectory.py check --trajectory BENCH_telemetry.json

The trajectory file is a single JSON object ``{"trajectory_schema": 1,
"runs": [...]}``; each entry is ``{"label": ..., "report": {...}}`` where
``report`` is the bench's JSON verbatim.  Fewer than two perf_engine entries
(a fresh trajectory, or a cache miss in CI) passes trivially.

Standard library only — no third-party imports.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TRAJECTORY_SCHEMA = 1


def _load_trajectory(path: Path) -> dict:
    if not path.exists():
        return {"trajectory_schema": TRAJECTORY_SCHEMA, "runs": []}
    with path.open(encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "runs" not in data:
        raise SystemExit(f"{path}: not a trajectory file (missing 'runs')")
    schema = data.get("trajectory_schema")
    if schema != TRAJECTORY_SCHEMA:
        raise SystemExit(f"{path}: unsupported trajectory_schema {schema!r}")
    return data


def _load_run_report(path: Path) -> dict:
    """Parse the last non-empty line of ``path`` as a bench JSON report."""
    lines = [line for line in path.read_text(encoding="utf-8").splitlines()
             if line.strip()]
    if not lines:
        raise SystemExit(f"{path}: empty run file")
    try:
        report = json.loads(lines[-1])
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: last line is not JSON: {error}") from error
    if not isinstance(report, dict) or "bench" not in report:
        raise SystemExit(f"{path}: report has no 'bench' field")
    return report


def cmd_append(args: argparse.Namespace) -> int:
    trajectory_path = Path(args.trajectory)
    trajectory = _load_trajectory(trajectory_path)
    report = _load_run_report(Path(args.run))
    label = args.label if args.label else f"run-{len(trajectory['runs'])}"
    trajectory["runs"].append({"label": label, "report": report})
    trajectory_path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=False) + "\n",
        encoding="utf-8")
    print(f"appended {report['bench']} run '{label}' "
          f"({len(trajectory['runs'])} total) to {trajectory_path}")
    return 0


def _perf_throughput(report: dict) -> float | None:
    """trials / wall_ms_wide for a perf_engine report, else None."""
    if report.get("bench") != "perf_engine":
        return None
    trials = report.get("trials")
    wall_ms = report.get("wall_ms_wide")
    if not isinstance(trials, (int, float)) or not isinstance(wall_ms, (int, float)):
        return None
    if wall_ms <= 0:
        return None
    return float(trials) / float(wall_ms)


def cmd_check(args: argparse.Namespace) -> int:
    trajectory = _load_trajectory(Path(args.trajectory))
    perf_runs = [(entry.get("label", "?"), throughput)
                 for entry in trajectory["runs"]
                 if (throughput := _perf_throughput(entry.get("report", {})))
                 is not None]
    if len(perf_runs) < 2:
        print(f"only {len(perf_runs)} perf_engine run(s) in trajectory; "
              "nothing to compare — pass")
        return 0

    latest_label, latest = perf_runs[-1]
    best_label, best = max(perf_runs[:-1], key=lambda item: item[1])
    drop = 1.0 - latest / best
    print(f"perf_engine throughput (trials/ms): latest '{latest_label}' = "
          f"{latest:.3f}, best earlier '{best_label}' = {best:.3f} "
          f"({drop:+.1%} regression)")
    if drop > args.max_regression:
        print(f"FAIL: throughput dropped {drop:.1%} > "
              f"{args.max_regression:.0%} allowed", file=sys.stderr)
        return 1
    print("pass")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    append = sub.add_parser("append", help="append a run report to the trajectory")
    append.add_argument("--run", required=True,
                        help="file whose last line is the bench --json report")
    append.add_argument("--trajectory", required=True,
                        help="trajectory JSON file (created if missing)")
    append.add_argument("--label", default="",
                        help="label for this run (default: run-<index>)")
    append.set_defaults(func=cmd_append)

    check = sub.add_parser("check", help="fail on perf_engine throughput regression")
    check.add_argument("--trajectory", required=True)
    check.add_argument("--max-regression", type=float, default=0.25,
                       help="maximum tolerated fractional drop (default 0.25)")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
