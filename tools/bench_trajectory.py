#!/usr/bin/env python3
"""Append bench JSON reports to a trajectory file and gate on regressions.

The bench binaries emit a one-line JSON report with ``--json`` (and a richer
telemetry document with ``--telemetry-out``).  This tool maintains the
machine-readable *trajectory* of those reports across CI runs so throughput
changes are visible over time, and fails the build when the latest
``perf_engine`` run regresses too far.

Subcommands
-----------
append   Read one run report (a file whose last non-empty line is the JSON
         object a bench printed) and append it to the trajectory file::

             ./build/bench/perf_engine --trials=120 --json | tail -n1 > run.json
             python3 tools/bench_trajectory.py append \
                 --run run.json --trajectory BENCH_telemetry.json --label "$SHA"

check    Gate: compute perf_engine throughput (trials / wall_ms_wide) for
         every run in the trajectory and compare the latest against the best
         earlier run.  Exits non-zero when the latest throughput dropped by
         more than ``--max-regression`` (default 0.25, i.e. >25% slower)::

             python3 tools/bench_trajectory.py check --trajectory BENCH_telemetry.json

         Wall-clock throughput is only comparable between runs recorded on
         the same machine, so ``append`` stamps each entry with a machine
         fingerprint and ``check`` compares the latest run only against
         earlier entries carrying the same fingerprint (entries without one,
         from older trajectories, match anything).

         Two machine-independent assertions complement the wall-clock gate
         (speedup *ratios* within one report, or between two runs of the
         same machine, transfer across hosts):

         ``--require BENCH:FIELD>=VALUE`` asserts a numeric field of the
         latest BENCH report (repeatable; ops ``>= <= > < ==``)::

             ... check --trajectory t.json --require 'perf_hotpath:convolve_speedup>=1.5'

         ``--require-speedup BENCH>=FACTOR`` asserts that the latest BENCH
         run improved single-thread throughput by at least FACTOR over the
         *earliest* same-machine BENCH run — the committed pre/post pair
         that records an optimization PR's win.  Unlike the regression
         check, this fails when no comparable pair exists: a gate that
         cannot find its baseline must not silently pass.

The trajectory file is a single JSON object ``{"trajectory_schema": 1,
"runs": [...]}``; each entry is ``{"label": ..., "machine": ...,
"report": {...}}`` where ``report`` is the bench's JSON verbatim.  Fewer
than two perf_engine entries (a fresh trajectory, or a cache miss in CI)
passes the regression check trivially.

Standard library only — no third-party imports.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
from pathlib import Path

TRAJECTORY_SCHEMA = 1

_REQUIRE_RE = re.compile(
    r"^(?P<bench>[\w.-]+):(?P<field>[\w.]+)\s*(?P<op>>=|<=|==|>|<)\s*"
    r"(?P<value>[-+0-9.eE]+)$")
_SPEEDUP_RE = re.compile(r"^(?P<bench>[\w.-]+)\s*>=\s*(?P<factor>[-+0-9.eE]+)$")

_OPS = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: a == b,
}


def machine_fingerprint() -> str:
    """Coarse host fingerprint: wall-clock numbers are only comparable
    between runs that share it."""
    return f"{platform.system()}-{platform.machine()}-{os.cpu_count()}cpu"


def _same_machine(a: dict, b: dict) -> bool:
    """Entries without a fingerprint (older trajectories) match anything."""
    ma, mb = a.get("machine"), b.get("machine")
    return ma is None or mb is None or ma == mb


def _load_trajectory(path: Path) -> dict:
    if not path.exists():
        return {"trajectory_schema": TRAJECTORY_SCHEMA, "runs": []}
    with path.open(encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "runs" not in data:
        raise SystemExit(f"{path}: not a trajectory file (missing 'runs')")
    schema = data.get("trajectory_schema")
    if schema != TRAJECTORY_SCHEMA:
        raise SystemExit(f"{path}: unsupported trajectory_schema {schema!r}")
    return data


def _load_run_report(path: Path) -> dict:
    """Parse the last non-empty line of ``path`` as a bench JSON report."""
    lines = [line for line in path.read_text(encoding="utf-8").splitlines()
             if line.strip()]
    if not lines:
        raise SystemExit(f"{path}: empty run file")
    try:
        report = json.loads(lines[-1])
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: last line is not JSON: {error}") from error
    if not isinstance(report, dict) or "bench" not in report:
        raise SystemExit(f"{path}: report has no 'bench' field")
    return report


def cmd_append(args: argparse.Namespace) -> int:
    trajectory_path = Path(args.trajectory)
    trajectory = _load_trajectory(trajectory_path)
    report = _load_run_report(Path(args.run))
    label = args.label if args.label else f"run-{len(trajectory['runs'])}"
    machine = args.machine if args.machine else machine_fingerprint()
    trajectory["runs"].append(
        {"label": label, "machine": machine, "report": report})
    trajectory_path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=False) + "\n",
        encoding="utf-8")
    print(f"appended {report['bench']} run '{label}' "
          f"({len(trajectory['runs'])} total) to {trajectory_path}")
    return 0


def _perf_throughput(report: dict) -> float | None:
    """trials / wall_ms_wide for a perf_engine report, else None."""
    if report.get("bench") != "perf_engine":
        return None
    trials = report.get("trials")
    wall_ms = report.get("wall_ms_wide")
    if not isinstance(trials, (int, float)) or not isinstance(wall_ms, (int, float)):
        return None
    if wall_ms <= 0:
        return None
    return float(trials) / float(wall_ms)


def _single_thread_throughput(report: dict, bench: str) -> float | None:
    """Single-thread throughput for a report of ``bench``, else None.

    perf_sentry reports carry their single-channel rate directly as
    ``sustained_msamples_per_sec``; everything else derives
    trials / single-thread wall ms."""
    if report.get("bench") != bench:
        return None
    if bench == "perf_sentry":
        sustained = report.get("sustained_msamples_per_sec")
        if not isinstance(sustained, (int, float)) or sustained <= 0:
            return None
        return float(sustained)
    trials = report.get("trials")
    wall_ms = report.get("wall_ms_threads1", report.get("wall_ms_wide"))
    if not isinstance(trials, (int, float)) or not isinstance(wall_ms, (int, float)):
        return None
    if wall_ms <= 0:
        return None
    return float(trials) / float(wall_ms)


def _check_regression(runs: list[dict], max_regression: float) -> bool:
    """Wall-clock gate: latest perf_engine run vs the best earlier run on
    the same machine. Passes trivially without a comparable pair (a fresh
    trajectory, or the first run on a new machine)."""
    perf = [entry for entry in runs
            if _perf_throughput(entry.get("report", {})) is not None]
    if len(perf) < 2:
        print(f"only {len(perf)} perf_engine run(s) in trajectory; "
              "nothing to compare — pass")
        return True
    latest_entry = perf[-1]
    comparable = [entry for entry in perf[:-1]
                  if _same_machine(entry, latest_entry)]
    if not comparable:
        print("no earlier perf_engine run on this machine; "
              "wall-clock comparison skipped — pass")
        return True
    latest = _perf_throughput(latest_entry["report"])
    best_entry = max(comparable,
                     key=lambda entry: _perf_throughput(entry["report"]))
    best = _perf_throughput(best_entry["report"])
    drop = 1.0 - latest / best
    print(f"perf_engine throughput (trials/ms): latest "
          f"'{latest_entry.get('label', '?')}' = {latest:.3f}, best earlier "
          f"'{best_entry.get('label', '?')}' = {best:.3f} "
          f"({drop:+.1%} regression)")
    if drop > max_regression:
        print(f"FAIL: throughput dropped {drop:.1%} > "
              f"{max_regression:.0%} allowed", file=sys.stderr)
        return False
    return True


def _check_require(runs: list[dict], expr: str) -> bool:
    """--require BENCH:FIELD OP VALUE against the latest BENCH report.
    Missing bench or field fails: an unverifiable assertion is a failure,
    not a pass."""
    match = _REQUIRE_RE.match(expr)
    if not match:
        raise SystemExit(f"--require {expr!r}: expected BENCH:FIELD>=VALUE")
    bench, field = match["bench"], match["field"]
    op, bound = match["op"], float(match["value"])
    latest = None
    for entry in runs:
        if entry.get("report", {}).get("bench") == bench:
            latest = entry
    if latest is None:
        print(f"FAIL: --require {expr!r}: no {bench} run in trajectory",
              file=sys.stderr)
        return False
    value = latest["report"].get(field)
    if not isinstance(value, (int, float)):
        print(f"FAIL: --require {expr!r}: latest {bench} run "
              f"'{latest.get('label', '?')}' has no numeric field "
              f"{field!r}", file=sys.stderr)
        return False
    ok = _OPS[op](float(value), bound)
    status = "ok" if ok else "FAIL"
    print(f"{status}: {bench}:{field} = {value:g} (required {op} {bound:g})",
          file=sys.stdout if ok else sys.stderr)
    return ok


def _check_require_speedup(runs: list[dict], expr: str) -> bool:
    """--require-speedup BENCH>=FACTOR: latest vs earliest same-machine
    BENCH run by single-thread throughput. Fails when the pair does not
    exist — this gate certifies a recorded pre/post win, so a missing
    baseline means the record is broken."""
    match = _SPEEDUP_RE.match(expr)
    if not match:
        raise SystemExit(
            f"--require-speedup {expr!r}: expected BENCH>=FACTOR")
    bench, factor = match["bench"], float(match["factor"])
    entries = [entry for entry in runs
               if _single_thread_throughput(entry.get("report", {}), bench)
               is not None]
    if not entries:
        print(f"FAIL: --require-speedup {expr!r}: no {bench} run in "
              "trajectory", file=sys.stderr)
        return False
    latest = entries[-1]
    baselines = [entry for entry in entries[:-1]
                 if _same_machine(entry, latest)]
    if not baselines:
        print(f"FAIL: --require-speedup {expr!r}: no earlier {bench} run "
              f"on machine {latest.get('machine', '?')!r} to compare "
              "against", file=sys.stderr)
        return False
    baseline = baselines[0]
    speedup = (_single_thread_throughput(latest["report"], bench)
               / _single_thread_throughput(baseline["report"], bench))
    ok = speedup >= factor
    status = "ok" if ok else "FAIL"
    print(f"{status}: {bench} single-thread speedup "
          f"'{baseline.get('label', '?')}' -> '{latest.get('label', '?')}' "
          f"= {speedup:.2f}x (required >= {factor:g}x)",
          file=sys.stdout if ok else sys.stderr)
    return ok


def cmd_check(args: argparse.Namespace) -> int:
    trajectory = _load_trajectory(Path(args.trajectory))
    runs = trajectory["runs"]
    ok = _check_regression(runs, args.max_regression)
    for expr in args.require:
        ok = _check_require(runs, expr) and ok
    for expr in args.require_speedup:
        ok = _check_require_speedup(runs, expr) and ok
    if not ok:
        return 1
    print("pass")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    append = sub.add_parser("append", help="append a run report to the trajectory")
    append.add_argument("--run", required=True,
                        help="file whose last line is the bench --json report")
    append.add_argument("--trajectory", required=True,
                        help="trajectory JSON file (created if missing)")
    append.add_argument("--label", default="",
                        help="label for this run (default: run-<index>)")
    append.add_argument("--machine", default="",
                        help="machine fingerprint for this run "
                             "(default: auto-detected)")
    append.set_defaults(func=cmd_append)

    check = sub.add_parser("check", help="fail on perf_engine throughput regression")
    check.add_argument("--trajectory", required=True)
    check.add_argument("--max-regression", type=float, default=0.25,
                       help="maximum tolerated fractional drop (default 0.25)")
    check.add_argument("--require", action="append", default=[],
                       metavar="BENCH:FIELD>=VALUE",
                       help="assert a numeric field of the latest BENCH "
                            "report (machine-independent; repeatable)")
    check.add_argument("--require-speedup", action="append", default=[],
                       metavar="BENCH>=FACTOR",
                       help="assert latest vs earliest same-machine BENCH "
                            "single-thread throughput ratio (repeatable)")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
