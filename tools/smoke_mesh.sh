#!/usr/bin/env bash
# Mesh subsystem smoke test over the shipped quick campaigns:
#   1. fusion_detection_quick: threads=1 reference, then a threads=8 run and
#      a 2-way shard partition (shard 1 first, out of plan order) — both
#      merged reports must be byte-identical to the reference. The per-trial
#      sensor fan-out (per-sensor channels, fusion, localization) must not
#      leak thread scheduling or shard membership into the numbers.
#   2. localization_error_quick: same threads=1 vs threads=8 byte-diff, plus
#      a sanity assertion that the reported RMSE improves (strictly
#      decreases) from the 4-sensor field to the 9-sensor field at every
#      shadowing level — more sensors must mean a better fix.
#
# usage: smoke_mesh.sh <build_dir> <source_dir>
set -euo pipefail

build_dir=${1:?usage: smoke_mesh.sh <build_dir> <source_dir>}
source_dir=${2:?usage: smoke_mesh.sh <build_dir> <source_dir>}
cli="$build_dir/tools/ctc_campaign"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

fusion="$source_dir/campaigns/fusion_detection_quick.json"
localize="$source_dir/campaigns/localization_error_quick.json"

"$cli" run "$fusion" --out "$work/fd_ref" --threads=1 --quiet | tail -n1 > "$work/fd_ref.json"
"$cli" run "$fusion" --out "$work/fd_t8" --threads=8 --quiet | tail -n1 > "$work/fd_t8.json"
if ! diff "$work/fd_ref.json" "$work/fd_t8.json"; then
  echo "FAIL: fusion_detection threads=8 differs from threads=1" >&2
  exit 1
fi
echo "ok: fusion_detection threads=8 == threads=1"

# Shard partition: shard 1 first (out of plan order, exit 3 = incomplete),
# then shard 0 completes and merges.
rc=0
"$cli" run "$fusion" --out "$work/fd_shard" --shards=2 --shard=1 --quiet > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "FAIL: lone mesh shard should exit 3 (incomplete), got $rc" >&2
  exit 1
fi
"$cli" run "$fusion" --out "$work/fd_shard" --shards=2 --shard=0 --quiet | tail -n1 > "$work/fd_shard.json"
if ! diff "$work/fd_ref.json" "$work/fd_shard.json"; then
  echo "FAIL: fusion_detection 2-shard aggregate differs from sequential run" >&2
  exit 1
fi
echo "ok: fusion_detection 2-shard partition == sequential reference"

"$cli" run "$localize" --out "$work/le_ref" --threads=1 --quiet | tail -n1 > "$work/le_ref.json"
"$cli" run "$localize" --out "$work/le_t8" --threads=8 --quiet | tail -n1 > "$work/le_t8.json"
if ! diff "$work/le_ref.json" "$work/le_t8.json"; then
  echo "FAIL: localization_error threads=8 differs from threads=1" >&2
  exit 1
fi
echo "ok: localization_error threads=8 == threads=1"

python3 - "$work/le_ref.json" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
cells = list(zip(report["sensors"], report["shadow_sigma_db"], report["rmse_m"]))
by_shadow = {}
for sensors, shadow, rmse in cells:
    by_shadow.setdefault(shadow, {})[sensors] = rmse
for shadow, rmse_by_sensors in sorted(by_shadow.items()):
    counts = sorted(rmse_by_sensors)
    for small, big in zip(counts, counts[1:]):
        if not rmse_by_sensors[big] < rmse_by_sensors[small]:
            sys.exit(f"FAIL: RMSE not improving with sensors at shadow="
                     f"{shadow}: {rmse_by_sensors}")
    print(f"ok: rmse decreases {counts} sensors at shadow={shadow}: "
          + " > ".join(f"{rmse_by_sensors[c]:.3f}" for c in counts))
EOF

echo "smoke_mesh: all checks passed"
