#!/usr/bin/env bash
# Drain-scheduler smoke for the sentry service: the deficit-round-robin
# scheduler (default) must be byte-identical to the lockstep reference
# whenever nothing drops and on single-channel overload, must be
# deterministic run to run, and must not starve any channel when a shared
# shard is overloaded (see docs/SENTRY.md).
#
# usage: smoke_sentry_sched.sh <build_dir> <source_dir>
set -euo pipefail

build_dir=${1:?usage: smoke_sentry_sched.sh <build_dir> <source_dir>}
cli="$build_dir/tools/ctc_sentry"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$cli" live --frames=8 --attack-every=3 --snr-db=15 --seed=90210 \
  --capture-out="$work/air.cf32" > "$work/live.jsonl"

# 1. No overload: DRR degenerates to lockstep (the deficit floor covers
#    every channel's whole backlog each round) at any shard count.
"$cli" replay --capture="$work/air.cf32" --channels=3 --sched=lockstep \
  > "$work/nodrop.lockstep.jsonl"
for shards in 1 2 3; do
  "$cli" replay --capture="$work/air.cf32" --channels=3 --shards="$shards" \
    --sched=drr > "$work/nodrop.drr.s$shards.jsonl"
  if ! cmp -s "$work/nodrop.lockstep.jsonl" "$work/nodrop.drr.s$shards.jsonl"; then
    echo "FAIL: no-drop DRR (shards=$shards) differs from lockstep" >&2
    diff "$work/nodrop.lockstep.jsonl" "$work/nodrop.drr.s$shards.jsonl" >&2 || true
    exit 1
  fi
done
verdicts=$(wc -l < "$work/nodrop.lockstep.jsonl")
if [ "$verdicts" -eq 0 ]; then
  echo "FAIL: no-drop replay produced no verdicts (gate is vacuous)" >&2
  exit 1
fi

# 2. Single-channel overload: a one-channel shard earns weight 1 every
#    round, so DRR reduces exactly to lockstep even while the ring drops.
overload="--ring=1024 --ingest-block=1024 --drain-block=256"
"$cli" replay --capture="$work/air.cf32" $overload --sched=lockstep \
  > "$work/one.lockstep.jsonl"
"$cli" replay --capture="$work/air.cf32" $overload --sched=drr \
  > "$work/one.drr.jsonl"
if ! cmp -s "$work/one.lockstep.jsonl" "$work/one.drr.jsonl"; then
  echo "FAIL: single-channel overload DRR differs from lockstep" >&2
  diff "$work/one.lockstep.jsonl" "$work/one.drr.jsonl" >&2 || true
  exit 1
fi

# 3. Shared-shard overload: three channels on one worker with the ring
#    dropping. The weight floor of one block per round means every channel
#    keeps draining — each must land at least one verdict — and the round
#    structure is deterministic, so two runs agree byte for byte.
"$cli" replay --capture="$work/air.cf32" --channels=3 --shards=1 $overload \
  --sched=drr > "$work/multi.drr.a.jsonl"
"$cli" replay --capture="$work/air.cf32" --channels=3 --shards=1 $overload \
  --sched=drr > "$work/multi.drr.b.jsonl"
if ! cmp -s "$work/multi.drr.a.jsonl" "$work/multi.drr.b.jsonl"; then
  echo "FAIL: multi-channel overload DRR is not deterministic" >&2
  diff "$work/multi.drr.a.jsonl" "$work/multi.drr.b.jsonl" >&2 || true
  exit 1
fi
for ch in 0 1 2; do
  count=$(grep -c "\"channel\":$ch," "$work/multi.drr.a.jsonl" || true)
  if [ "$count" -eq 0 ]; then
    echo "FAIL: channel $ch starved under overloaded DRR (no verdicts)" >&2
    exit 1
  fi
done

echo "sentry scheduler smoke: PASS ($verdicts no-drop verdicts;" \
     "DRR==lockstep without drops and on single-channel overload;" \
     "no starvation on a shared overloaded shard)"
