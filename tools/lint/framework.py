"""Shared plumbing for the ctc lint family.

Everything a rule needs that is not the rule itself: walking the scanned
tree, stripping comments without disturbing line numbers, parsing inline
waivers, resolving #include targets the way the compiler would (via
compile_commands.json when a build tree is available), and formatting
findings uniformly across drivers.

Waiver syntax (one spelling, all lints):

    // ctc-lint: allow(<rule>[, <rule>...])

on the flagged line suppresses those rules for that line. The legacy
spelling `// det-lint: allow(<rule>)` from the original determinism lint is
accepted as a deprecated alias everywhere — see docs/STATIC_ANALYSIS.md for
the migration note. Waivers are expected to be rare and justified by an
adjacent comment.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

SOURCE_EXTENSIONS = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
SCAN_DIRS = ("src", "bench", "tools", "examples", "tests")

# The unified waiver plus the deprecated det-lint alias. Both accept a
# comma-separated rule list; rule names are lowercase kebab-case.
WAIVER_RES = (
    re.compile(r"//\s*ctc-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)"),
    re.compile(r"//\s*det-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)"),
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^">]+)[">]', re.MULTILINE)


class Finding:
    """One lint violation: a (path, line, rule, message) tuple that prints
    in the compiler-style `path:line: [rule] message` format every driver
    shares."""

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def blank_comments(text: str) -> str:
    """Returns `text` with //- and /* */-comments replaced by spaces,
    preserving line structure so reported line numbers stay exact. String
    literals are left intact (banned tokens never legitimately hide in
    them, and report markers must stay visible)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def line_waivers(raw_line: str) -> set:
    """Rules waived on this raw (unblanked) source line, either spelling."""
    rules = set()
    for waiver_re in WAIVER_RES:
        match = waiver_re.search(raw_line)
        if match:
            rules.update(rule.strip() for rule in match.group(1).split(","))
    return rules


class SourceFile:
    """A scanned file: raw text, comment-blanked text, and waiver lookup.
    `rel` is the path relative to the lint root in POSIX form — the key
    every allowlist and registry uses."""

    def __init__(self, rel: str, raw: str):
        self.rel = rel
        self.raw = raw
        self.code = blank_comments(raw)
        self.raw_lines = raw.splitlines()
        self.code_lines = self.code.splitlines()

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        return cls(rel, path.read_text(encoding="utf-8", errors="replace"))

    def waived(self, line_no: int, rule: str) -> bool:
        if 0 < line_no <= len(self.raw_lines):
            return rule in line_waivers(self.raw_lines[line_no - 1])
        return False

    def includes(self):
        """Yields (line_no, quoted: bool, target) for every #include in the
        comment-blanked text (commented-out includes never count)."""
        for line_no, line in enumerate(self.code_lines, 1):
            match = INCLUDE_RE.match(line)
            if match:
                yield line_no, match.group(1) == '"', match.group(2)


def collect_files(root: Path, dirs=SCAN_DIRS) -> list:
    """C++ sources under root/{dirs}, sorted for stable finding order."""
    files = []
    for sub in dirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_EXTENSIONS and path.is_file():
                files.append(path)
    return files


def load_tree(root: Path, dirs=SCAN_DIRS) -> list:
    """Loads every scanned file as a SourceFile keyed by root-relative
    POSIX path."""
    tree = []
    for path in collect_files(root, dirs):
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        tree.append(SourceFile.load(path, rel))
    return tree


def include_dirs_from_compile_commands(root: Path, build_dir=None) -> list:
    """Quoted-include search directories, the way the build resolves them.

    Reads -I/-isystem flags from compile_commands.json when a build tree is
    available (`build_dir`, or the first build*/ directory under root that
    has one); falls back to the canonical [root/src] — every first-party
    quoted include is rooted there, so the fallback keeps the lint exact on
    checkouts that have never configured."""
    candidates = []
    if build_dir is not None:
        candidates.append(Path(build_dir))
    candidates.extend(sorted(root.glob("build*")))
    database = None
    for candidate in candidates:
        path = candidate / "compile_commands.json"
        if path.is_file():
            database = path
            break
    dirs = []
    if database is not None:
        try:
            entries = json.loads(database.read_text())
        except (OSError, json.JSONDecodeError):
            entries = []
        seen = set()
        flag_re = re.compile(r"-(?:I|isystem)\s*(\S+)")
        for entry in entries:
            command = entry.get("command") or " ".join(entry.get("arguments", []))
            base = Path(entry.get("directory", "."))
            for flag in flag_re.findall(command):
                directory = Path(flag)
                if not directory.is_absolute():
                    directory = base / directory
                key = directory.resolve().as_posix()
                if key not in seen and directory.is_dir():
                    seen.add(key)
                    dirs.append(directory.resolve())
    root_src = (root / "src").resolve()
    if root_src.is_dir() and root_src not in dirs:
        dirs.append(root_src)
    return dirs


def resolve_include(target: str, includer: Path, include_dirs) -> Path:
    """Resolves a quoted #include the way the preprocessor would: first
    relative to the including file's directory, then across the -I search
    path. Returns None for system/third-party headers."""
    local = includer.parent / target
    if local.is_file():
        return local.resolve()
    for directory in include_dirs:
        candidate = Path(directory) / target
        if candidate.is_file():
            return candidate.resolve()
    return None


def render_report(findings, files_scanned: int, tool: str) -> str:
    """The shared findings report: one finding per line, then a summary —
    identical shape across drivers so CI artifacts and humans read one
    format."""
    lines = [str(finding) for finding in findings]
    if findings:
        lines.append("")
        lines.append(f"{tool}: {len(findings)} finding(s) in "
                     f"{files_scanned} file(s) scanned")
    else:
        lines.append(f"{tool}: OK ({files_scanned} files clean)")
    return "\n".join(lines) + "\n"
