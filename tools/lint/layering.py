"""Architecture-layer conformance: the docs/ARCHITECTURE.md dependency
table, enforced over every #include in the tree.

The layer spec (tools/lint/layers.json) names each layer, the path
prefixes that place a file in it, and the layers it may include directly.
Three rules:

  layer-dep       A quoted include from layer A into layer B where B is not
                  in A's declared deps. The message distinguishes *upward*
                  edges (B transitively depends on A — admitting the edge
                  would create a cycle) from merely *undeclared* ones
                  (declare the edge in layers.json + ARCHITECTURE.md, or
                  remove the include).

  layer-cycle     A cycle in the file-level quoted-include graph (header A
                  includes B includes A). Also fired, once, if the declared
                  layer graph itself is cyclic — a spec bug.

  layer-unmapped  A src/ file no layer path prefix claims. New subsystems
                  must register in layers.json before they can include or
                  be included.

Files under the `consumers` prefixes (bench/ tools/ examples/ tests/) may
include any layer; they still participate in cycle detection.
"""

from __future__ import annotations

import json
from pathlib import Path

from . import framework

SPEC_PATH = Path(__file__).resolve().parent / "layers.json"


def load_spec(path: Path = SPEC_PATH) -> dict:
    spec = json.loads(path.read_text())
    # Longest-prefix-first match order, so carve-outs (telemetry inside
    # src/sim/) beat their containing directory.
    matchers = []
    for layer, entry in spec["layers"].items():
        for prefix in entry["paths"]:
            matchers.append((prefix, layer))
    matchers.sort(key=lambda item: len(item[0]), reverse=True)
    spec["_matchers"] = matchers
    return spec


def layer_of(rel: str, spec: dict):
    """Layer name for a root-relative path, "consumer" for bench/tools/
    examples/tests, None for anything else (cmake scripts, docs...)."""
    for prefix, layer in spec["_matchers"]:
        if rel == prefix or (prefix.endswith("/") and rel.startswith(prefix)):
            return layer
    for prefix in spec["consumers"]["paths"]:
        if rel.startswith(prefix):
            return "consumer"
    return None


def _transitive_deps(spec: dict) -> dict:
    """layer -> set of layers reachable through declared deps."""
    deps = {name: set(entry["deps"]) for name, entry in spec["layers"].items()}
    closed = {}
    for name in deps:
        seen, stack = set(), list(deps[name])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(deps.get(current, ()))
        closed[name] = seen
    return closed


def check_spec_acyclic(spec: dict) -> list:
    """A declared layer graph with a cycle cannot be enforced — flag it as
    a layer-cycle finding against the spec file itself."""
    closure = _transitive_deps(spec)
    findings = []
    for name, reachable in sorted(closure.items()):
        if name in reachable:
            findings.append(framework.Finding(
                "tools/lint/layers.json", 1, "layer-cycle",
                f"declared layer graph is cyclic through '{name}' — the "
                "dependency table must be a DAG"))
    return findings


def check_layer_deps(tree, spec: dict) -> list:
    """layer-dep + layer-unmapped over every quoted include in the tree.

    Includes are attributed by the *target path* (the "layer/file.h"
    spelling every first-party include uses), falling back to resolving
    against src/ — no compiler needed, but compile_commands keeps the
    mapping exact when a build tree exists."""
    findings = []
    closure = _transitive_deps(spec)
    for source in tree:
        from_layer = layer_of(source.rel, spec)
        if from_layer is None:
            if source.rel.startswith("src/"):
                findings.append(framework.Finding(
                    source.rel, 1, "layer-unmapped",
                    "file belongs to no layer in tools/lint/layers.json — "
                    "register the subsystem (and its dependency row in "
                    "docs/ARCHITECTURE.md) before growing it"))
            continue
        if from_layer == "consumer":
            continue  # bench/tools/examples/tests may include any layer
        declared = set(spec["layers"][from_layer]["deps"])
        for line_no, quoted, target in source.includes():
            if not quoted:
                continue
            to_layer = layer_of("src/" + target, spec)
            if to_layer is None or to_layer in (from_layer, "consumer"):
                continue
            if to_layer in declared:
                continue
            if source.waived(line_no, "layer-dep"):
                continue
            if from_layer in closure.get(to_layer, set()):
                kind = (f"UPWARD edge: '{to_layer}' is built on top of "
                        f"'{from_layer}'")
            else:
                kind = "undeclared cross-layer edge"
            findings.append(framework.Finding(
                source.rel, line_no, "layer-dep",
                f"{kind} — layer '{from_layer}' may not include "
                f"'{target}' (declared deps: "
                f"{sorted(declared) or 'none'}; grow layers.json and the "
                "ARCHITECTURE.md table together if this dependency is "
                "intentional)"))
    return findings


def check_include_cycles(tree, root: Path, include_dirs) -> list:
    """File-level include cycle detection over the scanned tree.

    Builds the quoted-include graph restricted to scanned files (resolved
    the way the preprocessor would) and reports each strongly-connected
    cycle once, anchored at its lexicographically-smallest member so the
    finding is stable across runs."""
    rel_by_abs = {}
    for source in tree:
        rel_by_abs[(root / source.rel).resolve().as_posix()] = source.rel
    graph = {}
    include_line = {}
    for source in tree:
        targets = []
        includer = root / source.rel
        for line_no, quoted, target in source.includes():
            if not quoted:
                continue
            resolved = framework.resolve_include(target, includer, include_dirs)
            if resolved is None:
                continue
            rel = rel_by_abs.get(resolved.as_posix())
            if rel is not None and rel != source.rel:
                targets.append(rel)
                include_line.setdefault((source.rel, rel), line_no)
        graph[source.rel] = targets

    findings = []
    color = {}  # rel -> 1 while on stack, 2 when done
    stack = []

    def visit(node):
        color[node] = 1
        stack.append(node)
        for nxt in graph.get(node, ()):
            state = color.get(nxt)
            if state is None:
                visit(nxt)
            elif state == 1:
                cycle = stack[stack.index(nxt):] + [nxt]
                anchor = min(cycle[:-1])
                offset = cycle.index(anchor)
                ordered = cycle[offset:-1] + cycle[:offset] + [anchor]
                key = tuple(ordered)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    line = include_line.get((ordered[0], ordered[1]), 1)
                    findings.append(framework.Finding(
                        ordered[0], line, "layer-cycle",
                        "include cycle: " + " -> ".join(ordered)))
        stack.pop()
        color[node] = 2

    seen_cycles = set()
    for node in sorted(graph):
        if node not in color:
            visit(node)
    return findings


def run(tree, root: Path, include_dirs, spec: dict = None) -> list:
    if spec is None:
        spec = load_spec()
    findings = check_spec_acyclic(spec)
    if not findings:  # a cyclic spec makes dep classification meaningless
        findings += check_layer_deps(tree, spec)
    findings += check_include_cycles(tree, root, include_dirs)
    return findings
