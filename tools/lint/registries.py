"""Contract-registry cross-checks: the repo's cross-cutting contracts —
the dispatched kernel table, the versioned JSON schemas, the telemetry
metric families, the RNG stream-ID namespaces — extracted from the code
and verified against the documentation that promises them.

  kernel-registry   Every member of dsp::kernels::KernelTable (kernels.h)
                    must be registered in BOTH implementation tables
                    (kernels_scalar.cpp and kernels_avx2.cpp — explicitly
                    delegating an entry to scalar_impl counts), exercised
                    by tests/dsp/kernels_equivalence_test.cpp, carry an
                    equivalence-class annotation in its kernels.h section
                    header, and appear with the SAME class in the
                    docs/PERFORMANCE.md kernel table.

  schema-docs       Every `*_schema` version string emitted from src/ must
                    be documented: some docs/*.md file names the schema,
                    pins the same version number, and mentions every field
                    the emitter writes. (Docs may describe extra,
                    emitter-provided fields; the check is one-directional —
                    emitted ⊆ documented.)

  telemetry-registry  Every CTC_TELEM_{COUNT,GAUGE,HISTO,TIMER} site in
                    src/ must appear as `stage/name` in a
                    docs/TELEMETRY.md family table.

  stream-ids        Every dsp::Rng::for_stream call site in src/ must be
                    registered below with the stream-ID namespace it owns
                    (the scheme documented in src/dsp/rng.h). Two sites
                    claiming one namespace — or an unregistered site, whose
                    separation nobody can prove — is a finding.
"""

from __future__ import annotations

import re
from pathlib import Path

from . import framework

KERNELS_HEADER = "src/dsp/kernels/kernels.h"
KERNEL_TABLES = ("src/dsp/kernels/kernels_scalar.cpp",
                 "src/dsp/kernels/kernels_avx2.cpp")
KERNEL_TEST = "tests/dsp/kernels_equivalence_test.cpp"
KERNEL_DOC = "docs/PERFORMANCE.md"
TELEMETRY_DOC = "docs/TELEMETRY.md"

# -- stream-ids registry ------------------------------------------------------
# dsp::Rng::for_stream namespace owners inside src/. Each entry records the
# id scheme its file implements — the schemes documented in src/dsp/rng.h.
# The seed column is what keeps the namespaces disjoint: two entries sharing
# a seed source would hand out colliding streams. Extend only together with
# the rng.h documentation block.
STREAM_ID_REGISTRY = {
    "src/dsp/rng.h": {
        "namespace": "definition",
        "scheme": "declares for_stream; owns no ids",
    },
    "src/dsp/rng.cpp": {
        "namespace": "definition",
        "scheme": "implements for_stream; owns no ids",
    },
    "src/sim/engine.h": {
        "namespace": "engine-trial",
        "scheme": "stream_id = run_index << 32 | trial_index on the engine "
                  "seed (sim::TrialEngine; campaign units inherit it via "
                  "unit.run_index)",
    },
    "src/sentry/source.cpp": {
        "namespace": "sentry-channel",
        "scheme": "stream_id = channel index on the sentry capture seed "
                  "(never an engine seed)",
    },
    "src/mesh/sensor_field.cpp": {
        "namespace": "mesh-sensor",
        "scheme": "stream_id = sensor index on a per-trial sensor_seed "
                  "drawn from the trial's engine stream",
    },
}

FOR_STREAM_RE = re.compile(r"\bfor_stream\s*\(")
TELEM_SITE_RE = re.compile(
    r'CTC_TELEM_(COUNT|GAUGE|HISTO|TIMER)\s*\(\s*"([^"]+)"\s*,\s*"([^"]+)"')
SCHEMA_NAME_RE = re.compile(r'\\?"([a-z][a-z0-9_]*_schema)\\?"')
ESCAPED_KEY_RE = re.compile(r'\\"([A-Za-z_][A-Za-z0-9_]*)\\"\s*:')
SET_KEY_RE = re.compile(r'\.\s*(?:set|at)\s*\(\s*"([A-Za-z_][A-Za-z0-9_]*)"')
DOC_TOKEN_RE = re.compile(r'[`"]([A-Za-z_][A-Za-z0-9_]*)[`"]')


def _tree_map(tree):
    return {source.rel: source for source in tree}


def _read_doc(root: Path, rel: str):
    path = root / rel
    if not path.is_file():
        return None
    return path.read_text(encoding="utf-8", errors="replace")


# -- kernel-registry ----------------------------------------------------------

def parse_kernel_table(header_source) -> list:
    """(name, line, equivalence_class) for every KernelTable member, the
    class taken from the most recent `// -- section (bitwise|tolerance)`
    comment above it (None when a member has no annotated section)."""
    members = []
    in_struct = False
    current_class = None
    # Annotations may carry a qualifier after the class: (bitwise,
    # lane-structured), (tolerance) ... — the class word is what binds.
    section_re = re.compile(r"//\s*--.*\((bitwise|tolerance)[^)]*\)")
    member_re = re.compile(r"\(\s*\*\s*(\w+)\s*\)\s*\(")
    for line_no, raw_line in enumerate(header_source.raw_lines, 1):
        if "struct KernelTable" in raw_line:
            in_struct = True
            current_class = None
            continue
        if not in_struct:
            continue
        if raw_line.strip().startswith("};"):
            break
        section = section_re.search(raw_line)
        if section:
            current_class = section.group(1)
        match = member_re.search(
            header_source.code_lines[line_no - 1]
            if line_no - 1 < len(header_source.code_lines) else "")
        if match:
            members.append((match.group(1), line_no, current_class))
    return members


def parse_doc_kernel_classes(doc_text: str) -> dict:
    """kernel name -> class from the docs/PERFORMANCE.md registry table
    (rows shaped `| `name` | bitwise | ...`)."""
    classes = {}
    row_re = re.compile(r"^\|\s*`(\w+)`\s*\|\s*(bitwise|tolerance)\b",
                        re.MULTILINE)
    for match in row_re.finditer(doc_text):
        classes[match.group(1)] = match.group(2)
    return classes


def check_kernel_registry(tree, root: Path) -> list:
    findings = []
    sources = _tree_map(tree)
    header = sources.get(KERNELS_HEADER)
    if header is None:
        return [framework.Finding(
            KERNELS_HEADER, 1, "kernel-registry",
            "dispatch-table header not found — the kernel registry cannot "
            "be verified")]
    members = parse_kernel_table(header)
    if not members:
        return [framework.Finding(
            KERNELS_HEADER, 1, "kernel-registry",
            "no KernelTable members parsed — struct layout changed under "
            "the lint")]

    impl_sources = {rel: sources.get(rel) for rel in KERNEL_TABLES}
    test_source = sources.get(KERNEL_TEST)
    doc_text = _read_doc(root, KERNEL_DOC)
    doc_classes = parse_doc_kernel_classes(doc_text) if doc_text else {}

    for name, line, equivalence_class in members:
        if header.waived(line, "kernel-registry"):
            continue
        for rel, impl in impl_sources.items():
            if impl is None:
                findings.append(framework.Finding(
                    rel, 1, "kernel-registry",
                    f"kernel implementation table missing (needed for "
                    f"'{name}')"))
            elif not re.search(r"\.\s*" + name + r"\s*=", impl.code):
                findings.append(framework.Finding(
                    KERNELS_HEADER, line, "kernel-registry",
                    f"kernel '{name}' is not registered in {rel} — every "
                    "table entry needs scalar AND avx2 implementations "
                    "(delegating to scalar_impl explicitly is fine)"))
        if test_source is None or \
                not re.search(r"\b" + name + r"\s*\(", test_source.code):
            findings.append(framework.Finding(
                KERNELS_HEADER, line, "kernel-registry",
                f"kernel '{name}' has no reference in {KERNEL_TEST} — "
                "every kernel's equivalence class must be pinned by a test"))
        if equivalence_class is None:
            findings.append(framework.Finding(
                KERNELS_HEADER, line, "kernel-registry",
                f"kernel '{name}' sits in no annotated section — mark its "
                "section comment with (bitwise) or (tolerance)"))
        elif not doc_classes:
            findings.append(framework.Finding(
                KERNEL_DOC, 1, "kernel-registry",
                "no kernel class table found — document every kernel's "
                "equivalence class in a `| `name` | class |` table"))
            break
        elif name not in doc_classes:
            findings.append(framework.Finding(
                KERNELS_HEADER, line, "kernel-registry",
                f"kernel '{name}' missing from the {KERNEL_DOC} class "
                "table"))
        elif doc_classes[name] != equivalence_class:
            findings.append(framework.Finding(
                KERNELS_HEADER, line, "kernel-registry",
                f"kernel '{name}' is ({equivalence_class}) in kernels.h "
                f"but ({doc_classes[name]}) in {KERNEL_DOC} — the two "
                "registries must agree"))
    return findings


# -- schema-docs --------------------------------------------------------------

def _sibling_rels(rel: str):
    """The file itself plus its header/source twin — where version
    constants legitimately live."""
    rels = [rel]
    if rel.endswith(".cpp"):
        rels.append(rel[:-4] + ".h")
    elif rel.endswith(".h"):
        rels.append(rel[:-2] + ".cpp")
    return rels


def _schema_version_in_code(schema: str, rel: str, sources):
    """Version number the emitter pins: a literal `schema":N`, or a
    k*SchemaVersion constant in the file or its twin."""
    source = sources.get(rel)
    literal_re = re.compile(re.escape(schema) + r'\\?"\s*:\s*(\d+)')
    match = literal_re.search(source.code)
    if match:
        return int(match.group(1))
    const_re = re.compile(r"\bk\w*SchemaVersion\s*=\s*(\d+)")
    for candidate in _sibling_rels(rel):
        twin = sources.get(candidate)
        if twin is not None:
            match = const_re.search(twin.code)
            if match:
                return int(match.group(1))
    return None


def emitted_schema_fields(source) -> set:
    """JSON keys the file emits: escaped `\\"key\\":` string-literal keys
    plus `.set("key")`/`.at("key")` builder keys."""
    keys = set(ESCAPED_KEY_RE.findall(source.code))
    keys.update(SET_KEY_RE.findall(source.code))
    return keys


def check_schema_docs(tree, root: Path, doc_dir: str = "docs") -> list:
    findings = []
    sources = _tree_map(tree)
    docs = {}
    for path in sorted((root / doc_dir).glob("*.md")):
        docs[f"{doc_dir}/{path.name}"] = path.read_text(encoding="utf-8",
                                                        errors="replace")

    for source in tree:
        if not source.rel.startswith("src/"):
            continue
        schemas = sorted(set(SCHEMA_NAME_RE.findall(source.code)))
        if not schemas:
            continue
        fields = emitted_schema_fields(source)
        for schema in schemas:
            line_no = next(
                (no for no, text in enumerate(source.code_lines, 1)
                 if schema in text), 1)
            if source.waived(line_no, "schema-docs"):
                continue
            doc_rel = next((rel for rel, text in sorted(docs.items())
                            if schema in text), None)
            if doc_rel is None:
                findings.append(framework.Finding(
                    source.rel, line_no, "schema-docs",
                    f"emitted schema '{schema}' is documented nowhere under "
                    f"{doc_dir}/ — versioned output needs a field table"))
                continue
            doc_text = docs[doc_rel]
            code_version = _schema_version_in_code(schema, source.rel, sources)
            doc_version_match = re.search(
                re.escape(schema) + r'"?\s*:\s*(\d+)', doc_text)
            if code_version is not None and doc_version_match is None:
                findings.append(framework.Finding(
                    source.rel, line_no, "schema-docs",
                    f"'{schema}' version {code_version} is pinned in code "
                    f"but {doc_rel} never states a version"))
            elif (code_version is not None and
                  int(doc_version_match.group(1)) != code_version):
                findings.append(framework.Finding(
                    source.rel, line_no, "schema-docs",
                    f"'{schema}' is version {code_version} in code but "
                    f"{doc_version_match.group(1)} in {doc_rel} — bump the "
                    "doc with the emitter"))
            documented = set(DOC_TOKEN_RE.findall(doc_text))
            for field in sorted(fields):
                if field not in documented:
                    findings.append(framework.Finding(
                        source.rel, line_no, "schema-docs",
                        f"field '{field}' emitted next to '{schema}' is "
                        f"not documented in {doc_rel}"))
    return findings


# -- telemetry-registry -------------------------------------------------------

def telemetry_sites(tree) -> list:
    """(rel, line, kind, stage, name) for every macro site in src/."""
    sites = []
    for source in tree:
        if not source.rel.startswith("src/"):
            continue
        for line_no, line in enumerate(source.code_lines, 1):
            for match in TELEM_SITE_RE.finditer(line):
                sites.append((source.rel, line_no, match.group(1).lower(),
                              match.group(2), match.group(3)))
    return sites


def check_telemetry_registry(tree, root: Path) -> list:
    doc_text = _read_doc(root, TELEMETRY_DOC)
    findings = []
    tree_map = _tree_map(tree)
    for rel, line_no, kind, stage, name in telemetry_sites(tree):
        if tree_map[rel].waived(line_no, "telemetry-registry"):
            continue
        family = f"{stage}/{name}"
        if doc_text is None or family not in doc_text:
            findings.append(framework.Finding(
                rel, line_no, "telemetry-registry",
                f"{kind} metric `{family}` is missing from the "
                f"{TELEMETRY_DOC} family tables — document it (stage, "
                "name, kind, meaning) where consumers look first"))
    return findings


# -- stream-ids ---------------------------------------------------------------

def check_stream_ids(tree, registry=None) -> list:
    if registry is None:
        registry = STREAM_ID_REGISTRY
    findings = []
    call_sites = {}
    for source in tree:
        if not source.rel.startswith("src/"):
            continue
        for line_no, line in enumerate(source.code_lines, 1):
            if FOR_STREAM_RE.search(line):
                call_sites.setdefault(source.rel, line_no)

    owners = {}
    for rel, entry in sorted(registry.items()):
        namespace = entry["namespace"]
        if namespace == "definition":
            continue
        if namespace in owners:
            findings.append(framework.Finding(
                rel, call_sites.get(rel, 1), "stream-ids",
                f"stream-ID namespace '{namespace}' is claimed by both "
                f"{owners[namespace]} and {rel} — two owners of one id "
                "space collide; derive a sub-seed (rng.h documents the "
                "sanctioned schemes) or merge the registry entries"))
        else:
            owners[namespace] = rel

    for rel, line_no in sorted(call_sites.items()):
        source = _tree_map(tree)[rel]
        if source.waived(line_no, "stream-ids"):
            continue
        if rel not in registry:
            findings.append(framework.Finding(
                rel, line_no, "stream-ids",
                "unregistered Rng::for_stream call site — nobody can prove "
                "its stream ids miss the engine/sentry/mesh namespaces. "
                "Register it in tools/lint/registries.py "
                "STREAM_ID_REGISTRY with the scheme it implements (see the "
                "stream-ID section of src/dsp/rng.h)"))
    for rel in sorted(registry):
        if registry[rel]["namespace"] != "definition" and rel not in call_sites:
            findings.append(framework.Finding(
                rel, 1, "stream-ids",
                "stale STREAM_ID_REGISTRY entry: file no longer calls "
                "for_stream — drop the entry so the registry stays an "
                "exact map of the id-space owners"))
    return findings


def run(tree, root: Path) -> list:
    findings = []
    findings += check_kernel_registry(tree, root)
    findings += check_schema_docs(tree, root)
    findings += check_telemetry_registry(tree, root)
    findings += check_stream_ids(tree)
    return findings
