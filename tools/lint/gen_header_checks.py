#!/usr/bin/env python3
"""Header self-sufficiency checker (rule: header-selfcheck).

Every public header must compile standalone — pulling in everything it
uses — and survive double inclusion, which also proves its include guard.
The build-tree enforcement is the generated `ctc_header_selfcheck` object
library (root CMakeLists.txt, same TU shape); this script is the
standalone equivalent for checkouts without a build tree and for the
lint's own fixture tests: generate one `check_<slug>.cpp` per header,
then (with --compile) syntax-check each against the compiler.

Usage:
  gen_header_checks.py --src DIR [--out DIR] [--compile] [--cxx CXX]

Exit 0 = all headers pass (or generation-only), 1 = findings, 2 = usage
error. Findings print in the shared `path:line: [rule] message` format.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from lint import framework  # noqa: E402


def tu_body(rel: str) -> str:
    return f'#include "{rel}"\n#include "{rel}"\n'


def slug_of(rel: str) -> str:
    return re.sub(r"[^A-Za-z0-9]", "_", rel)


def generate(src: Path, out: Path) -> list:
    """Writes one check TU per header under `src` into `out` (write-if-
    changed); returns [(header_rel, tu_path)] sorted by header."""
    out.mkdir(parents=True, exist_ok=True)
    pairs = []
    for header in sorted(src.rglob("*.h")):
        rel = header.relative_to(src).as_posix()
        tu = out / f"check_{slug_of(rel)}.cpp"
        body = tu_body(rel)
        if not tu.is_file() or tu.read_text() != body:
            tu.write_text(body)
        pairs.append((rel, tu))
    return pairs


def compile_checks(pairs, src: Path, cxx: str, std: str) -> list:
    findings = []
    for rel, tu in pairs:
        result = subprocess.run(
            [cxx, f"-std={std}", "-fsyntax-only", "-I", str(src), str(tu)],
            capture_output=True, text=True)
        if result.returncode != 0:
            detail = (result.stderr or result.stdout).strip()
            first = detail.splitlines()[0] if detail else "compile failed"
            findings.append(framework.Finding(
                f"src/{rel}", 1, "header-selfcheck",
                "header does not compile standalone (or its include guard "
                f"fails under double inclusion): {first}"))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="gen_header_checks.py",
        description="generate/compile header self-sufficiency TUs")
    parser.add_argument("--src", required=True,
                        help="header root (the src/ directory)")
    parser.add_argument("--out", default=None,
                        help="TU output directory (default: temp dir)")
    parser.add_argument("--compile", action="store_true",
                        help="syntax-check each generated TU")
    parser.add_argument("--cxx", default="c++", help="compiler (default c++)")
    parser.add_argument("--std", default="c++20",
                        help="language standard (default c++20)")
    args = parser.parse_args(argv)

    src = Path(args.src).resolve()
    if not src.is_dir():
        print(f"gen_header_checks.py: no such directory: {src}",
              file=sys.stderr)
        return 2

    if args.out is None and args.compile:
        with tempfile.TemporaryDirectory() as tmp:
            pairs = generate(src, Path(tmp))
            findings = compile_checks(pairs, src, args.cxx, args.std)
    else:
        out = Path(args.out) if args.out else None
        if out is None:
            print("gen_header_checks.py: --out required without --compile",
                  file=sys.stderr)
            return 2
        pairs = generate(src, out)
        findings = (compile_checks(pairs, src, args.cxx, args.std)
                    if args.compile else [])

    sys.stdout.write(framework.render_report(
        findings, len(pairs), "header_selfcheck"))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
