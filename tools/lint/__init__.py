"""Shared static-analysis framework for the ctc lint family.

Modules:
  framework   file walking, comment blanking, waiver parsing, findings,
              compile_commands-aware include resolution
  layering    architecture-layer conformance (layers.json)
  registries  contract-registry cross-checks (kernel table, JSON schemas,
              telemetry metric families, RNG stream-ID namespaces)

Drivers live one directory up: tools/ctc_lint.py (architecture + registry
analyzers) and tools/lint_determinism.py (reproducibility rules), both built
on this package. See docs/STATIC_ANALYSIS.md for the rule catalog.
"""
