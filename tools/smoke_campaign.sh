#!/usr/bin/env bash
# Campaign executor smoke test on a tiny 2x2 grid:
#   1. reference: uninterrupted single-thread run;
#   2. kill/resume: stop after the first checkpointed unit (--max-units=1,
#      exit code 3 = incomplete), then resume with 8 threads — the merged
#      report must be byte-identical to the reference;
#   3. sharding: run shard 1 then shard 0 of a 2-way partition into one
#      output directory — again byte-identical;
#   4. concurrent sharding: both shard processes run simultaneously against
#      one output directory (the flock'd checkpoint merge must not lose
#      units), then a merge pass reports — again byte-identical.
#
# usage: smoke_campaign.sh <build_dir> <source_dir>
set -euo pipefail

build_dir=${1:?usage: smoke_campaign.sh <build_dir> <source_dir>}
source_dir=${2:?usage: smoke_campaign.sh <build_dir> <source_dir>}
cli="$build_dir/tools/ctc_campaign"
spec="$source_dir/campaigns/smoke_2x2.json"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$cli" run "$spec" --out "$work/ref" --threads=1 --quiet | tail -n1 > "$work/ref.json"

# Kill after the first checkpoint (exit 3 = incomplete), then resume.
rc=0
"$cli" run "$spec" --out "$work/resume" --max-units=1 --quiet > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "FAIL: interrupted run should exit 3 (incomplete), got $rc" >&2
  exit 1
fi
if [ ! -f "$work/resume/manifest.json" ]; then
  echo "FAIL: no manifest checkpoint after interrupted run" >&2
  exit 1
fi
"$cli" run "$spec" --out "$work/resume" --threads=8 --quiet | tail -n1 > "$work/resume.json"
if ! diff "$work/ref.json" "$work/resume.json"; then
  echo "FAIL: kill/resume aggregate differs from uninterrupted run" >&2
  exit 1
fi
echo "ok: kill at first checkpoint + threads=8 resume == threads=1 reference"

# Shard partition: shard 1 first (out of plan order), then shard 0.
rc=0
"$cli" run "$spec" --out "$work/shard" --shards=2 --shard=1 --quiet > /dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "FAIL: lone shard should exit 3 (incomplete), got $rc" >&2
  exit 1
fi
"$cli" run "$spec" --out "$work/shard" --shards=2 --shard=0 --quiet | tail -n1 > "$work/shard.json"
if ! diff "$work/ref.json" "$work/shard.json"; then
  echo "FAIL: 2-shard aggregate differs from sequential run" >&2
  exit 1
fi
echo "ok: 2-shard partition == sequential reference"

# Concurrent shard processes sharing one --out directory. Either process may
# exit 0 (it observed the full result set at the barrier) or 3 (the other
# shard was still running); any other code, or a corrupt manifest, is a bug.
"$cli" run "$spec" --out "$work/conc" --shards=2 --shard=0 --quiet > /dev/null &
pid0=$!
"$cli" run "$spec" --out "$work/conc" --shards=2 --shard=1 --quiet > /dev/null &
pid1=$!
for pid in "$pid0" "$pid1"; do
  rc=0
  wait "$pid" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 3 ]; then
    echo "FAIL: concurrent shard exited $rc (expected 0 or 3)" >&2
    exit 1
  fi
done
# Every one of the 8 units must be in the merged manifest BEFORE the merge
# pass — a lost update would be silently repaired by the deterministic
# re-run, so the byte-diff alone cannot catch it.
units=$(grep -o '"index":' "$work/conc/manifest.json" | wc -l)
if [ "$units" -ne 8 ]; then
  echo "FAIL: concurrent shards checkpointed $units/8 units (lost update)" >&2
  exit 1
fi
"$cli" run "$spec" --out "$work/conc" --quiet | tail -n1 > "$work/conc.json"
if ! diff "$work/ref.json" "$work/conc.json"; then
  echo "FAIL: concurrent 2-shard aggregate differs from sequential run" >&2
  exit 1
fi
echo "ok: concurrent 2-shard processes == sequential reference"
echo "smoke campaign: PASS"
