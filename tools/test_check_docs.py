#!/usr/bin/env python3
"""Fixture unit tests for tools/check_docs.py."""

from __future__ import annotations

import io
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import check_docs  # noqa: E402


class CheckDocsFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        (self.root / "docs").mkdir()
        (self.root / "src" / "alpha").mkdir(parents=True)
        (self.root / "src" / "alpha" / "alpha.h").write_text("// alpha\n")

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    def run_check(self):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            status = check_docs.main(["--root", str(self.root)])
        return status, out.getvalue() + err.getvalue()

    def base_readme(self, extra: str = "") -> str:
        return "# fixture\n\nThe `alpha/` subsystem (src/alpha).\n\n" + extra


class LinkRule(CheckDocsFixture):
    def test_resolving_link_passes(self):
        self.write("docs/GUIDE.md", "see [readme](../README.md)\n")
        self.write("README.md", self.base_readme("[guide](docs/GUIDE.md)\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_broken_link_flagged(self):
        self.write("README.md", self.base_readme("[gone](docs/MISSING.md)\n"))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("[link]", output)
        self.assertIn("MISSING.md", output)

    def test_link_escaping_repo_flagged(self):
        self.write("README.md", self.base_readme("[out](../../etc/passwd)\n"))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("escapes the repo", output)

    def test_external_and_anchor_links_skipped(self):
        self.write("README.md", self.base_readme(
            "[web](https://example.com/x) [mail](mailto:a@b.c) [top](#head)\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_anchor_suffix_stripped_before_resolving(self):
        self.write("docs/GUIDE.md", "# head\n")
        self.write("README.md",
                   self.base_readme("[sec](docs/GUIDE.md#head)\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_links_inside_fences_ignored(self):
        self.write("README.md", self.base_readme(
            "```\n[not a link](nowhere.md)\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)


class JsonRule(CheckDocsFixture):
    def test_valid_json_fence_passes(self):
        self.write("README.md", self.base_readme(
            '```json\n{"a": 1, "b": [true, null]}\n```\n'))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_invalid_json_fence_flagged(self):
        self.write("README.md", self.base_readme(
            '```json\n{"a": 1,}\n```\n'))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("[json]", output)

    def test_jsonc_comments_stripped(self):
        self.write("README.md", self.base_readme(
            '```jsonc\n{\n  "a": 1,  // a comment\n  "url": "http://x/y"\n}\n```\n'))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_invalid_jsonc_still_flagged(self):
        self.write("README.md", self.base_readme(
            '```jsonc\n{"a": }  // nope\n```\n'))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("[json]", output)


class ShellRule(CheckDocsFixture):
    def test_allowlisted_commands_pass(self):
        self.write("README.md", self.base_readme(
            "```sh\ncmake -B build -G Ninja\nctest --test-dir build\n"
            "python3 tools/x.py --root .\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_unknown_command_flagged(self):
        self.write("README.md", self.base_readme(
            "```sh\nnetcat -l 8080\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("'netcat'", output)

    def test_relative_path_and_variable_heads_allowed(self):
        self.write("README.md", self.base_readme(
            "```sh\n./build/bench/perf_engine --json | tail -n1\n"
            "$bench --dry-run\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_absolute_path_head_flagged(self):
        self.write("README.md", self.base_readme(
            "```sh\n/usr/bin/evil --now\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("[shell]", output)

    def test_every_pipeline_stage_checked(self):
        self.write("README.md", self.base_readme(
            "```sh\ncat log | badfilter | tail -n1\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("'badfilter'", output)

    def test_for_loop_variable_is_not_a_head(self):
        self.write("README.md", self.base_readme(
            "```sh\nfor b in build/bench/*; do $b; done\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_transcript_output_lines_ignored(self):
        self.write("README.md", self.base_readme(
            "```sh\n$ ctest --test-dir build\n100% tests passed\n"
            "definitely not a command!\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_transcript_command_lines_still_checked(self):
        self.write("README.md", self.base_readme(
            "```sh\n$ netcat -l 8080\nlistening...\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("'netcat'", output)

    def test_skip_marker_exempts_block(self):
        self.write("README.md", self.base_readme(
            "<!-- check-docs: skip -->\n```sh\nnetcat -l 8080\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_comment_lines_ignored(self):
        self.write("README.md", self.base_readme(
            "```sh\n# not run: netcat\ncmake --build build\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_env_prefix_assignment_skipped(self):
        self.write("README.md", self.base_readme(
            "```sh\nCTC_SIMD=scalar ctest --test-dir build\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_redirect_target_is_not_a_head(self):
        self.write("README.md", self.base_readme(
            "```sh\nctest > out.txt 2> err.txt\ncmake --build build\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_syntax_error_flagged(self):
        self.write("README.md", self.base_readme(
            "```sh\nfor b in; do\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("[shell]", output)

    def test_untagged_fence_ignored(self):
        self.write("README.md", self.base_readme(
            "```\ntotally --free ==form== text\n```\n"))
        status, output = self.run_check()
        self.assertEqual(status, 0, output)


class CoverageRule(CheckDocsFixture):
    def test_unmentioned_subsystem_flagged(self):
        (self.root / "src" / "beta").mkdir()
        (self.root / "src" / "beta" / "beta.h").write_text("// beta\n")
        self.write("README.md", self.base_readme())
        status, output = self.run_check()
        self.assertEqual(status, 1)
        self.assertIn("src/beta/", output)

    def test_mention_in_any_doc_suffices(self):
        (self.root / "src" / "beta").mkdir()
        (self.root / "src" / "beta" / "beta.h").write_text("// beta\n")
        self.write("README.md", self.base_readme())
        self.write("docs/BETA.md", "The beta/ layer does things.\n")
        status, output = self.run_check()
        self.assertEqual(status, 0, output)

    def test_empty_directory_not_required(self):
        (self.root / "src" / "gamma").mkdir()
        self.write("README.md", self.base_readme())
        status, output = self.run_check()
        self.assertEqual(status, 0, output)


class Heads(unittest.TestCase):
    def test_command_heads_splits_operators(self):
        self.assertEqual(
            check_docs.command_heads("a --x && b | c; d"),
            ["a", "b", "c", "d"])

    def test_quoted_arguments_not_heads(self):
        self.assertEqual(
            check_docs.command_heads('diff "a b.json" other.json'), ["diff"])


if __name__ == "__main__":
    unittest.main(verbosity=2)
