#!/usr/bin/env python3
"""Static determinism lint for the ctc reproduction tree.

The repo's core contract is bit-identical simulation output for a fixed seed
at any thread count, shard partition, or kill/resume boundary. The CI diff
gates catch violations *dynamically* — but only when the scheduler happens
to expose them. This lint enforces the reproducibility rules *statically*:

  rng            All randomness flows through ctc::dsp::Rng. Standard-library
                 engines (std::mt19937, std::random_device, ...), libc
                 rand()/srand()/drand48(), and wall-clock seeds (time(),
                 clock(), getpid(), ...) are banned outside src/dsp/rng.{h,cpp}.

  clock          std::chrono clock reads are banned outside the telemetry
                 timer layer and the explicitly-allowlisted perf benches
                 whose *measurand* is wall time. Everything else must not
                 let a clock value near a report.

  unordered-iter Files that write report/manifest/CSV output must not
                 iterate std::unordered_map/std::unordered_set — hash-order
                 iteration silently reorders emitted rows between libstdc++
                 versions and ASLR runs. Membership tests are fine.

  telem-mix      Telemetry timer machinery (record_timer, ScopedTimer,
                 Kind::timer) stays inside the telemetry layer, and the
                 deterministic CTC_TELEM_COUNT/GAUGE/HISTO macros must never
                 be fed clock-derived values — wall time belongs in timer
                 metrics, which determinism-checked output excludes.

  intrinsics     Raw SIMD intrinsics (<immintrin.h>, __m128/__m256/__m512
                 vector types, _mm*_ calls) are banned outside
                 src/dsp/kernels/. Hand-vectorized code is only bitwise-safe
                 when it honors the kernel layer's lane/tail contracts and
                 ships with a scalar twin behind runtime dispatch — ad-hoc
                 intrinsics elsewhere fork numerics between build hosts.

A finding can be waived inline with `// ctc-lint: allow(<rule>)` on the
flagged line (the legacy spelling `// det-lint: allow(<rule>)` still works
as a deprecated alias — see docs/STATIC_ANALYSIS.md); waivers are expected
to be rare and justified in an adjacent comment. Allowlisted files are
enumerated below WITH the reason they are exempt — extend the list only
with a reason.

Built on the shared tools/lint/ framework (file walking, comment blanking,
waiver parsing, report format) — tools/ctc_lint.py is the sibling driver
for architecture/contract rules.

Usage:
  lint_determinism.py [--root DIR] [FILE ...]
With no FILE arguments the standard tree (src/ bench/ tools/ examples/
tests/) under --root is scanned. Exit status: 0 clean, 1 violations found,
2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint import framework  # noqa: E402

SOURCE_EXTENSIONS = framework.SOURCE_EXTENSIONS
SCAN_DIRS = framework.SCAN_DIRS

# Files exempt from a rule, path (relative to --root, POSIX separators) ->
# justification. The justification is printed with --list-rules so the
# policy stays reviewable.
RNG_ALLOWLIST = {
    "src/dsp/rng.h": "the one blessed randomness implementation",
    "src/dsp/rng.cpp": "the one blessed randomness implementation",
}
CLOCK_ALLOWLIST = {
    "src/sim/telemetry.h": "the telemetry timer layer (ScopedTimer)",
    "src/sim/telemetry.cpp": "the telemetry timer layer",
    "bench/perf_engine.cpp":
        "throughput bench: wall time IS the measurand (trajectory-gated, "
        "never diffed for determinism)",
    "bench/ablation_likelihood.cpp":
        "latency ablation: reports per-call wall time by design",
    "bench/perf_hotpath.cpp":
        "kernel micro-bench: wall time IS the measurand (trajectory-gated, "
        "never diffed for determinism)",
    "src/sentry/source.h":
        "RateLimitedSource pacing deadline: the clock throttles *when* "
        "samples are released, never *which* samples — verdict output stays "
        "clock-free (gated by tools/sentry_determinism.sh)",
    "src/sentry/source.cpp":
        "RateLimitedSource sleep_until pacing — same rationale as source.h",
    "bench/perf_sentry.cpp":
        "throughput/latency bench: wall time IS the measurand "
        "(trajectory-gated, never diffed for determinism)",
    "bench/perf_mesh.cpp":
        "sensor-field throughput bench: wall time IS the measurand "
        "(trajectory-gated, never diffed for determinism; the batched-vs-"
        "serial equality bit is clock-free)",
}
TELEM_ALLOWLIST = {
    "src/sim/telemetry.h": "defines the timer machinery",
    "src/sim/telemetry.cpp": "implements the timer machinery",
    "bench/bench_common.h":
        "renders timer metrics in the human-readable summary table",
    "tests/sim/telemetry_test.cpp": "tests the timer machinery",
    "tests/sim/telemetry_disabled_test.cpp": "tests the compiled-out macros",
}

# Back-compat names: both spellings parse via the framework now.
WAIVER_RE = framework.WAIVER_RES[1]
Violation = framework.Finding
blank_comments = framework.blank_comments
line_waivers = framework.line_waivers

# -- rule: rng ---------------------------------------------------------------

RNG_PATTERNS = [
    (re.compile(r"\bstd::mt19937(?:_64)?\b"), "std::mt19937 engine"),
    (re.compile(r"\bstd::minstd_rand0?\b"), "std::minstd_rand engine"),
    (re.compile(r"\bstd::default_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\bstd::ranlux\w+\b"), "std::ranlux engine"),
    (re.compile(r"\bstd::knuth_b\b"), "std::knuth_b engine"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device (nondeterministic seed source)"),
    (re.compile(r"\bstd::(?:uniform_int|uniform_real|normal|bernoulli|poisson|exponential)_distribution\b"),
     "std <random> distribution (unspecified algorithm: values differ across standard libraries)"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\("), "libc rand()/srand()"),
    (re.compile(r"(?<![\w.:>])[ljm]?rand48\s*\("), "libc *rand48()"),
    (re.compile(r"(?<![\w.:>])random\s*\("), "libc random()"),
    (re.compile(r"\bstd::time\s*\("), "std::time() wall clock"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|\))"), "time() wall clock"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"), "clock() processor time"),
    (re.compile(r"(?<![\w.:>])clock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w.:>])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.:>])getpid\s*\(\s*\)"), "getpid() (process-dependent value)"),
    # Globally-qualified spellings (::getpid(), ::time(...)) must not slip
    # past the bare-name patterns above. The lookbehind keeps std::/other
    # namespace qualifications out (std::time has its own pattern).
    (re.compile(r"(?<![\w>])::(?:getpid|gettimeofday|clock_gettime|time|clock|rand|srand|random|drand48)\s*\("),
     "globally-qualified libc time/rand/pid call"),
]

# -- rule: clock -------------------------------------------------------------

CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:steady_clock|system_clock|high_resolution_clock)\b")

# -- rule: unordered-iter ----------------------------------------------------

# A file counts as report-writing when it mentions any artifact it could be
# emitting ordered output into.
REPORT_MARKERS = (
    "report.json", "manifest.json", "cells.csv", "telemetry.json",
    "JsonReport", "to_json",
)
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)")
UNORDERED_DIRECT_ITER_RE = re.compile(
    r"for\s*\([^;)]*:\s*[^)]*\bstd::unordered_(?:map|set|multimap|multiset)\b")

# -- rule: intrinsics --------------------------------------------------------

# The one directory allowed to speak raw SIMD. Everyone else calls through
# the dispatched dsp::kernels::KernelTable, which carries the scalar twin
# and the lane/tail equivalence contracts.
INTRINSICS_ALLOWED_PREFIX = "src/dsp/kernels/"
INTRINSICS_PATTERNS = [
    (re.compile(r"#\s*include\s*[<\"](?:imm|x86|xmm|emm|pmm|tmm|smm|nmm|wmm|avx\w*)intrin\.h[>\"]"),
     "vendor intrinsics header"),
    (re.compile(r"\b__m(?:128|256|512)[di]?\b"), "raw SIMD vector type"),
    (re.compile(r"\b_mm(?:256|512)?_\w+\s*\("), "raw SIMD intrinsic call"),
]

# -- rule: telem-mix ---------------------------------------------------------

TELEM_MACHINERY_RE = re.compile(
    r"\b(?:record_timer\s*\(|ScopedTimer\b|Kind::timer\b)")
TELEM_DET_MACRO_RE = re.compile(r"\bCTC_TELEM_(?:COUNT|GAUGE|HISTO)\s*\(")
CLOCKISH_ARG_RE = re.compile(
    r"std::chrono|::now\s*\(|\belapsed\w*\b|\bnanoseconds\b|_ns\b")


def extract_macro_args(code: str, start: int) -> str:
    """Returns the balanced-paren argument text of a macro call whose
    opening paren is at/after `start` (capped scan; macros here are short)."""
    open_idx = code.find("(", start)
    if open_idx < 0:
        return ""
    depth = 0
    for i in range(open_idx, min(len(code), open_idx + 2000)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[open_idx + 1:i]
    return code[open_idx + 1:open_idx + 2000]


def lint_source(source: framework.SourceFile) -> list:
    """All determinism rules over one loaded SourceFile."""
    rel = source.rel
    raw = source.raw
    code = source.code
    code_lines = source.code_lines
    violations = []

    def flag(line_no: int, rule: str, message: str) -> None:
        if source.waived(line_no, rule):
            return
        violations.append(Violation(rel, line_no, rule, message))

    # rng -------------------------------------------------------------------
    if rel not in RNG_ALLOWLIST:
        for line_no, line in enumerate(code_lines, 1):
            for pattern, what in RNG_PATTERNS:
                if pattern.search(line):
                    flag(line_no, "rng",
                         f"{what} — all randomness must flow through "
                         "ctc::dsp::Rng (src/dsp/rng.h)")

    # clock -----------------------------------------------------------------
    if rel not in CLOCK_ALLOWLIST:
        for line_no, line in enumerate(code_lines, 1):
            if CLOCK_RE.search(line):
                flag(line_no, "clock",
                     "std::chrono clock read outside the telemetry timer "
                     "layer — wall time must never feed report output")

    # unordered-iter --------------------------------------------------------
    if any(marker in raw for marker in REPORT_MARKERS):
        unordered_vars = set(UNORDERED_DECL_RE.findall(code))
        iter_res = [
            (var, re.compile(r"for\s*\([^;)]*:\s*[^)]*\b" + re.escape(var) + r"\b"))
            for var in unordered_vars
        ] + [
            (var, re.compile(r"\b" + re.escape(var) + r"\s*\.\s*c?begin\s*\("))
            for var in unordered_vars
        ]
        for line_no, line in enumerate(code_lines, 1):
            if UNORDERED_DIRECT_ITER_RE.search(line):
                flag(line_no, "unordered-iter",
                     "iteration over an unordered container in a "
                     "report-writing file — hash order is not deterministic")
                continue
            for var, pattern in iter_res:
                if pattern.search(line):
                    flag(line_no, "unordered-iter",
                         f"iteration over unordered container '{var}' in a "
                         "report-writing file — hash order is not "
                         "deterministic")
                    break

    # intrinsics ------------------------------------------------------------
    if not rel.startswith(INTRINSICS_ALLOWED_PREFIX):
        for line_no, line in enumerate(code_lines, 1):
            for pattern, what in INTRINSICS_PATTERNS:
                if pattern.search(line):
                    flag(line_no, "intrinsics",
                         f"{what} outside {INTRINSICS_ALLOWED_PREFIX} — "
                         "hand-vectorized code belongs in the dispatched "
                         "kernel layer (dsp::kernels) next to its scalar "
                         "twin")
                    break

    # telem-mix -------------------------------------------------------------
    if rel not in TELEM_ALLOWLIST:
        for line_no, line in enumerate(code_lines, 1):
            if TELEM_MACHINERY_RE.search(line):
                flag(line_no, "telem-mix",
                     "telemetry timer machinery used outside the telemetry "
                     "layer — instrument with CTC_TELEM_TIMER instead")
    for match in TELEM_DET_MACRO_RE.finditer(code):
        args = extract_macro_args(code, match.start())
        if CLOCKISH_ARG_RE.search(args):
            line_no = code.count("\n", 0, match.start()) + 1
            flag(line_no, "telem-mix",
                 "clock-derived value fed into a deterministic telemetry "
                 "macro — wall time belongs in CTC_TELEM_TIMER metrics, "
                 "which determinism-checked output excludes")

    return violations


def lint_file(path: Path, rel: str) -> list:
    return lint_source(framework.SourceFile.load(path, rel))


def collect_files(root: Path) -> list:
    return framework.collect_files(root)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rules and allowlists, then exit")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (default: scan the tree)")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()

    if args.list_rules:
        print(__doc__)
        for title, allowlist in (("rng", RNG_ALLOWLIST),
                                 ("clock", CLOCK_ALLOWLIST),
                                 ("telem-mix", TELEM_ALLOWLIST)):
            print(f"allowlist [{title}]:")
            for path, reason in allowlist.items():
                print(f"  {path}: {reason}")
        print("allowlist [intrinsics]:")
        print(f"  {INTRINSICS_ALLOWED_PREFIX}*: the dispatched kernel layer "
              "(scalar twin + equivalence contracts)")
        return 0

    if args.files:
        paths = [Path(f) for f in args.files]
    else:
        paths = collect_files(root)
        if not paths:
            print(f"lint_determinism: no sources found under {root}",
                  file=sys.stderr)
            return 2

    all_violations = []
    for path in paths:
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        all_violations.extend(lint_file(path, rel))

    for violation in all_violations:
        print(violation)
    if all_violations:
        print(f"\nlint_determinism: {len(all_violations)} violation(s) in "
              f"{len(paths)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: OK ({len(paths)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
