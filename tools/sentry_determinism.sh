#!/usr/bin/env bash
# Replay-determinism gate for the sentry service: generate a capture with
# the live traffic generator, then replay it through ctc_sentry twice at
# shard counts 1 and 4 — all four verdict JSONL streams must be
# byte-identical. This is the service-level extension of the repo's
# fixed-seed determinism discipline (see docs/SENTRY.md).
#
# usage: sentry_determinism.sh <build_dir> <source_dir>
set -euo pipefail

build_dir=${1:?usage: sentry_determinism.sh <build_dir> <source_dir>}
cli="$build_dir/tools/ctc_sentry"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# One channel's worth of mixed attack/benign air, captured to cf32.
"$cli" live --frames=10 --attack-every=3 --snr-db=15 --seed=424207 \
  --capture-out="$work/air.cf32" > "$work/live.jsonl"

run() {
  local shards=$1 out=$2
  "$cli" replay --capture="$work/air.cf32" --channels=4 --shards="$shards" \
    > "$out"
}

run 1 "$work/replay.s1a.jsonl"
run 1 "$work/replay.s1b.jsonl"
run 4 "$work/replay.s4a.jsonl"
run 4 "$work/replay.s4b.jsonl"

for other in s1b s4a s4b; do
  if ! cmp -s "$work/replay.s1a.jsonl" "$work/replay.$other.jsonl"; then
    echo "FAIL: replay verdicts differ between s1a and $other" >&2
    diff "$work/replay.s1a.jsonl" "$work/replay.$other.jsonl" >&2 || true
    exit 1
  fi
done

verdicts=$(wc -l < "$work/replay.s1a.jsonl")
if [ "$verdicts" -eq 0 ]; then
  echo "FAIL: replay produced no verdicts (gate is vacuous)" >&2
  exit 1
fi

# Every replay channel saw the same capture: per-channel verdict counts per
# channel id must match channel 0's.
for ch in 1 2 3; do
  c0=$(grep -c '"channel":0,' "$work/replay.s1a.jsonl")
  cn=$(grep -c "\"channel\":$ch," "$work/replay.s1a.jsonl")
  if [ "$c0" -ne "$cn" ]; then
    echo "FAIL: channel $ch verdict count $cn != channel 0 count $c0" >&2
    exit 1
  fi
done

echo "sentry determinism: PASS ($verdicts verdicts, shards 1 and 4, two runs each)"
