#!/usr/bin/env python3
"""Unit tests for tools/bench_trajectory.py (run via ctest or directly)."""

from __future__ import annotations

import importlib.util
import json
import tempfile
import unittest
from pathlib import Path

MODULE_PATH = Path(__file__).resolve().parent / "bench_trajectory.py"
_spec = importlib.util.spec_from_file_location("bench_trajectory", MODULE_PATH)
bench_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trajectory)


def perf_report(trials: int, wall_ms: float) -> dict:
    return {"bench": "perf_engine", "seed": 20190707, "trials": trials,
            "wall_ms_wide": wall_ms}


class TrajectoryTestCase(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = Path(self._tmp.name)
        self.trajectory = self.dir / "trajectory.json"

    def write_run(self, report: dict, name: str = "run.json") -> Path:
        path = self.dir / name
        # Mimic `bench --json | tail` capture: banner noise above, report last.
        path.write_text("=== banner ===\n\n" + json.dumps(report) + "\n",
                        encoding="utf-8")
        return path

    def append(self, report: dict, label: str = "") -> int:
        run = self.write_run(report)
        argv = ["append", "--run", str(run), "--trajectory",
                str(self.trajectory)]
        if label:
            argv += ["--label", label]
        return bench_trajectory.main(argv)

    def check(self, max_regression: float | None = None) -> int:
        argv = ["check", "--trajectory", str(self.trajectory)]
        if max_regression is not None:
            argv += ["--max-regression", str(max_regression)]
        return bench_trajectory.main(argv)

    # -- append ---------------------------------------------------------------

    def test_append_creates_trajectory_and_accumulates_runs(self) -> None:
        self.assertEqual(self.append(perf_report(100, 10.0), "first"), 0)
        self.assertEqual(self.append(perf_report(100, 11.0)), 0)
        data = json.loads(self.trajectory.read_text(encoding="utf-8"))
        self.assertEqual(data["trajectory_schema"], 1)
        self.assertEqual(len(data["runs"]), 2)
        self.assertEqual(data["runs"][0]["label"], "first")
        self.assertEqual(data["runs"][1]["label"], "run-1")  # default label
        self.assertEqual(data["runs"][0]["report"]["trials"], 100)

    def test_append_rejects_run_without_bench_field(self) -> None:
        run = self.write_run({"seed": 1})
        with self.assertRaises(SystemExit):
            bench_trajectory.main(["append", "--run", str(run),
                                   "--trajectory", str(self.trajectory)])

    def test_append_rejects_empty_and_non_json_runs(self) -> None:
        empty = self.dir / "empty.json"
        empty.write_text("\n\n", encoding="utf-8")
        with self.assertRaises(SystemExit):
            bench_trajectory.main(["append", "--run", str(empty),
                                   "--trajectory", str(self.trajectory)])
        garbage = self.dir / "garbage.json"
        garbage.write_text("not json\n", encoding="utf-8")
        with self.assertRaises(SystemExit):
            bench_trajectory.main(["append", "--run", str(garbage),
                                   "--trajectory", str(self.trajectory)])

    def test_rejects_wrong_schema_and_malformed_trajectory(self) -> None:
        self.trajectory.write_text(
            json.dumps({"trajectory_schema": 99, "runs": []}),
            encoding="utf-8")
        with self.assertRaises(SystemExit):
            self.append(perf_report(1, 1.0))
        self.trajectory.write_text(json.dumps({"no_runs": True}),
                                   encoding="utf-8")
        with self.assertRaises(SystemExit):
            self.check()

    # -- check ----------------------------------------------------------------

    def test_check_passes_trivially_with_fewer_than_two_perf_runs(self) -> None:
        self.assertEqual(self.check(), 0)  # missing file == empty trajectory
        self.append(perf_report(100, 10.0))
        self.append({"bench": "table2_attack_awgn", "seed": 1})  # not perf
        self.assertEqual(self.check(), 0)

    def test_check_passes_within_regression_budget(self) -> None:
        self.append(perf_report(100, 10.0), "base")     # 10 trials/ms
        self.append(perf_report(100, 12.0), "latest")   # -16.7%
        self.assertEqual(self.check(), 0)               # default budget 25%

    def test_check_fails_beyond_regression_budget(self) -> None:
        self.append(perf_report(100, 10.0), "base")
        self.append(perf_report(100, 20.0), "latest")   # -50%
        self.assertEqual(self.check(), 1)
        self.assertEqual(self.check(max_regression=0.6), 0)  # widened budget

    def test_check_compares_latest_against_best_earlier(self) -> None:
        self.append(perf_report(100, 20.0), "slow-start")   # 5 trials/ms
        self.append(perf_report(100, 10.0), "best")         # 10 trials/ms
        self.append(perf_report(100, 13.0), "latest")       # -23% vs best
        self.assertEqual(self.check(), 0)
        self.append(perf_report(100, 16.0), "regressed")    # -37.5% vs best
        self.assertEqual(self.check(), 1)

    def test_check_ignores_runs_without_usable_throughput(self) -> None:
        self.append({"bench": "perf_engine", "trials": 100})           # no wall
        self.append({"bench": "perf_engine", "trials": 100,
                     "wall_ms_wide": 0})                               # div by 0
        self.append(perf_report(100, 10.0))
        self.assertEqual(self.check(), 0)  # only one usable run -> pass


if __name__ == "__main__":
    unittest.main()
