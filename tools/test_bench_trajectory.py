#!/usr/bin/env python3
"""Unit tests for tools/bench_trajectory.py (run via ctest or directly)."""

from __future__ import annotations

import importlib.util
import json
import tempfile
import unittest
from pathlib import Path

MODULE_PATH = Path(__file__).resolve().parent / "bench_trajectory.py"
_spec = importlib.util.spec_from_file_location("bench_trajectory", MODULE_PATH)
bench_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trajectory)


def perf_report(trials: int, wall_ms: float) -> dict:
    return {"bench": "perf_engine", "seed": 20190707, "trials": trials,
            "wall_ms_wide": wall_ms}


class TrajectoryTestCase(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = Path(self._tmp.name)
        self.trajectory = self.dir / "trajectory.json"

    def write_run(self, report: dict, name: str = "run.json") -> Path:
        path = self.dir / name
        # Mimic `bench --json | tail` capture: banner noise above, report last.
        path.write_text("=== banner ===\n\n" + json.dumps(report) + "\n",
                        encoding="utf-8")
        return path

    def append(self, report: dict, label: str = "", machine: str = "") -> int:
        run = self.write_run(report)
        argv = ["append", "--run", str(run), "--trajectory",
                str(self.trajectory)]
        if label:
            argv += ["--label", label]
        if machine:
            argv += ["--machine", machine]
        return bench_trajectory.main(argv)

    def check(self, max_regression: float | None = None,
              require: list[str] | None = None,
              require_speedup: list[str] | None = None) -> int:
        argv = ["check", "--trajectory", str(self.trajectory)]
        if max_regression is not None:
            argv += ["--max-regression", str(max_regression)]
        for expr in require or []:
            argv += ["--require", expr]
        for expr in require_speedup or []:
            argv += ["--require-speedup", expr]
        return bench_trajectory.main(argv)

    # -- append ---------------------------------------------------------------

    def test_append_creates_trajectory_and_accumulates_runs(self) -> None:
        self.assertEqual(self.append(perf_report(100, 10.0), "first"), 0)
        self.assertEqual(self.append(perf_report(100, 11.0)), 0)
        data = json.loads(self.trajectory.read_text(encoding="utf-8"))
        self.assertEqual(data["trajectory_schema"], 1)
        self.assertEqual(len(data["runs"]), 2)
        self.assertEqual(data["runs"][0]["label"], "first")
        self.assertEqual(data["runs"][1]["label"], "run-1")  # default label
        self.assertEqual(data["runs"][0]["report"]["trials"], 100)

    def test_append_rejects_run_without_bench_field(self) -> None:
        run = self.write_run({"seed": 1})
        with self.assertRaises(SystemExit):
            bench_trajectory.main(["append", "--run", str(run),
                                   "--trajectory", str(self.trajectory)])

    def test_append_rejects_empty_and_non_json_runs(self) -> None:
        empty = self.dir / "empty.json"
        empty.write_text("\n\n", encoding="utf-8")
        with self.assertRaises(SystemExit):
            bench_trajectory.main(["append", "--run", str(empty),
                                   "--trajectory", str(self.trajectory)])
        garbage = self.dir / "garbage.json"
        garbage.write_text("not json\n", encoding="utf-8")
        with self.assertRaises(SystemExit):
            bench_trajectory.main(["append", "--run", str(garbage),
                                   "--trajectory", str(self.trajectory)])

    def test_rejects_wrong_schema_and_malformed_trajectory(self) -> None:
        self.trajectory.write_text(
            json.dumps({"trajectory_schema": 99, "runs": []}),
            encoding="utf-8")
        with self.assertRaises(SystemExit):
            self.append(perf_report(1, 1.0))
        self.trajectory.write_text(json.dumps({"no_runs": True}),
                                   encoding="utf-8")
        with self.assertRaises(SystemExit):
            self.check()

    # -- check ----------------------------------------------------------------

    def test_check_passes_trivially_with_fewer_than_two_perf_runs(self) -> None:
        self.assertEqual(self.check(), 0)  # missing file == empty trajectory
        self.append(perf_report(100, 10.0))
        self.append({"bench": "table2_attack_awgn", "seed": 1})  # not perf
        self.assertEqual(self.check(), 0)

    def test_check_passes_within_regression_budget(self) -> None:
        self.append(perf_report(100, 10.0), "base")     # 10 trials/ms
        self.append(perf_report(100, 12.0), "latest")   # -16.7%
        self.assertEqual(self.check(), 0)               # default budget 25%

    def test_check_fails_beyond_regression_budget(self) -> None:
        self.append(perf_report(100, 10.0), "base")
        self.append(perf_report(100, 20.0), "latest")   # -50%
        self.assertEqual(self.check(), 1)
        self.assertEqual(self.check(max_regression=0.6), 0)  # widened budget

    def test_check_compares_latest_against_best_earlier(self) -> None:
        self.append(perf_report(100, 20.0), "slow-start")   # 5 trials/ms
        self.append(perf_report(100, 10.0), "best")         # 10 trials/ms
        self.append(perf_report(100, 13.0), "latest")       # -23% vs best
        self.assertEqual(self.check(), 0)
        self.append(perf_report(100, 16.0), "regressed")    # -37.5% vs best
        self.assertEqual(self.check(), 1)

    def test_check_ignores_runs_without_usable_throughput(self) -> None:
        self.append({"bench": "perf_engine", "trials": 100})           # no wall
        self.append({"bench": "perf_engine", "trials": 100,
                     "wall_ms_wide": 0})                               # div by 0
        self.append(perf_report(100, 10.0))
        self.assertEqual(self.check(), 0)  # only one usable run -> pass

    # -- machine awareness ----------------------------------------------------

    def test_append_stamps_machine_fingerprint(self) -> None:
        self.append(perf_report(100, 10.0))
        self.append(perf_report(100, 10.0), machine="ci-runner")
        data = json.loads(self.trajectory.read_text(encoding="utf-8"))
        self.assertEqual(data["runs"][0]["machine"],
                         bench_trajectory.machine_fingerprint())
        self.assertEqual(data["runs"][1]["machine"], "ci-runner")

    def test_check_skips_wall_comparison_across_machines(self) -> None:
        # A 50% drop vs a *different* machine's run must not fail — wall
        # clock only compares within one fingerprint.
        self.append(perf_report(100, 10.0), "dev", machine="dev-box")
        self.append(perf_report(100, 20.0), "ci", machine="ci-runner")
        self.assertEqual(self.check(), 0)
        # Same drop on the same machine still fails.
        self.append(perf_report(100, 10.0), "ci-base", machine="ci-runner")
        self.append(perf_report(100, 20.0), "ci-slow", machine="ci-runner")
        self.assertEqual(self.check(), 1)

    def test_check_treats_untagged_legacy_entries_as_comparable(self) -> None:
        # Entries written before machine stamping (edited in by hand here)
        # must keep gating runs from any machine.
        data = {"trajectory_schema": 1, "runs": [
            {"label": "legacy", "report": perf_report(100, 10.0)},
        ]}
        self.trajectory.write_text(json.dumps(data), encoding="utf-8")
        self.append(perf_report(100, 20.0), "now", machine="ci-runner")
        self.assertEqual(self.check(), 1)

    # -- --require ------------------------------------------------------------

    def hotpath_report(self, convolve: float, despread: float) -> dict:
        return {"bench": "perf_hotpath", "convolve_speedup": convolve,
                "despread_speedup": despread}

    def test_require_asserts_on_latest_report_of_bench(self) -> None:
        self.append(self.hotpath_report(0.5, 0.5), "old")
        self.append(self.hotpath_report(7.0, 1.3), "new")
        self.assertEqual(
            self.check(require=["perf_hotpath:convolve_speedup>=1.5",
                                "perf_hotpath:despread_speedup>=1.0"]), 0)
        self.assertEqual(
            self.check(require=["perf_hotpath:convolve_speedup>=10"]), 1)

    def test_require_fails_on_missing_bench_or_field(self) -> None:
        self.assertEqual(self.check(require=["perf_hotpath:x>=1"]), 1)
        self.append(self.hotpath_report(7.0, 1.3))
        self.assertEqual(self.check(require=["perf_hotpath:nope>=1"]), 1)

    def test_require_rejects_malformed_expression(self) -> None:
        self.append(self.hotpath_report(7.0, 1.3))
        with self.assertRaises(SystemExit):
            self.check(require=["not an expression"])

    # -- --require-speedup ----------------------------------------------------

    def test_require_speedup_certifies_pre_post_pair(self) -> None:
        # 10 -> 2.5 ms for the same trial count: 4x single-thread speedup.
        self.append(perf_report(100, 10.0), "pre", machine="dev-box")
        self.append(perf_report(100, 2.5), "post", machine="dev-box")
        self.assertEqual(self.check(require_speedup=["perf_engine>=2"]), 0)
        self.assertEqual(self.check(require_speedup=["perf_engine>=5"]), 1)

    def test_require_speedup_uses_threads1_wall_when_present(self) -> None:
        pre = dict(perf_report(100, 2.0), wall_ms_threads1=10.0)
        post = dict(perf_report(100, 2.0), wall_ms_threads1=4.0)
        self.append(pre, "pre", machine="m")
        self.append(post, "post", machine="m")
        # wall_ms_wide is identical; only the threads1 field shows the 2.5x.
        self.assertEqual(self.check(require_speedup=["perf_engine>=2.5"]), 0)
        self.assertEqual(self.check(require_speedup=["perf_engine>=3"]), 1)

    def test_require_speedup_reads_sentry_sustained_rate(self) -> None:
        # perf_sentry has no trials/wall fields; the gate reads the
        # sustained single-channel Msamples/s directly.
        pre = {"bench": "perf_sentry", "sustained_msamples_per_sec": 4.0}
        post = {"bench": "perf_sentry", "sustained_msamples_per_sec": 9.0}
        self.append(pre, "pre", machine="m")
        self.append(post, "post", machine="m")
        self.assertEqual(self.check(require_speedup=["perf_sentry>=2"]), 0)
        self.assertEqual(self.check(require_speedup=["perf_sentry>=3"]), 1)
        # A report with a missing or non-positive rate is not a usable run.
        self.assertIsNone(bench_trajectory._single_thread_throughput(
            {"bench": "perf_sentry"}, "perf_sentry"))
        self.assertIsNone(bench_trajectory._single_thread_throughput(
            {"bench": "perf_sentry", "sustained_msamples_per_sec": 0.0},
            "perf_sentry"))

    def test_require_speedup_fails_without_a_baseline(self) -> None:
        # No run at all, then a run with no same-machine predecessor: both
        # must fail — the gate certifies a recorded pair.
        self.assertEqual(self.check(require_speedup=["perf_engine>=2"]), 1)
        self.append(perf_report(100, 10.0), "pre", machine="dev-box")
        self.assertEqual(self.check(require_speedup=["perf_engine>=2"]), 1)
        self.append(perf_report(100, 2.0), "ci", machine="ci-runner")
        self.assertEqual(self.check(require_speedup=["perf_engine>=2"]), 1)


if __name__ == "__main__":
    unittest.main()

