#!/usr/bin/env python3
"""Unit tests for lint_determinism.py: every rule must fire on a seeded
violation fixture and stay silent on the idiomatic clean counterpart.

Run directly (python3 tools/test_lint_determinism.py) or via ctest
(tools.lint_determinism_py)."""

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
LINT = TOOLS_DIR / "lint_determinism.py"
REPO_ROOT = TOOLS_DIR.parent

sys.path.insert(0, str(TOOLS_DIR))
import lint_determinism  # noqa: E402


class LintFixtureTest(unittest.TestCase):
    """Runs the lint on in-memory fixture files via lint_file()."""

    def lint_source(self, source: str, rel: str = "src/foo/bar.cpp"):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / Path(rel).name
            path.write_text(source)
            return lint_determinism.lint_file(path, rel)

    def assert_rules(self, source: str, expected_rules, rel="src/foo/bar.cpp"):
        violations = self.lint_source(source, rel=rel)
        self.assertEqual(sorted({v.rule for v in violations}),
                         sorted(set(expected_rules)),
                         msg="\n".join(str(v) for v in violations))

    # -- rng ----------------------------------------------------------------

    def test_rng_std_engine_fails(self):
        self.assert_rules("#include <random>\nstd::mt19937 gen(42);\n",
                          ["rng"])

    def test_rng_random_device_fails(self):
        self.assert_rules("std::random_device rd;\n", ["rng"])

    def test_rng_libc_rand_fails(self):
        self.assert_rules("int x = rand();\nsrand(7);\n", ["rng"])

    def test_rng_time_seed_fails(self):
        self.assert_rules("long t = time(NULL);\n", ["rng"])
        self.assert_rules("auto t = std::time(nullptr);\n", ["rng"])

    def test_rng_distribution_fails(self):
        self.assert_rules("std::uniform_int_distribution<int> d(0, 9);\n",
                          ["rng"])

    def test_rng_allowlisted_file_passes(self):
        self.assert_rules("std::mt19937 reference_stream;\n", [],
                          rel="src/dsp/rng.cpp")

    def test_rng_clean_dsp_rng_usage_passes(self):
        self.assert_rules(
            '#include "dsp/rng.h"\n'
            "double x = rng.uniform();\n"
            "auto r = ctc::dsp::Rng::for_stream(seed, 3);\n", [])

    def test_rng_globally_qualified_calls_fail(self):
        self.assert_rules("long pid = ::getpid();\n", ["rng"])
        self.assert_rules("auto t = ::time(nullptr);\n", ["rng"])

    def test_rng_identifier_suffix_no_false_positive(self):
        # run_time(, .time(, ->time(, obj.rand( must not trip the lint.
        self.assert_rules(
            "double run_time(int);\n"
            "double v = obj.time();\nint r = gen.rand();\n", [])

    def test_rng_comment_mention_passes(self):
        self.assert_rules("// avoids std::mt19937 seeding pitfalls\n", [])

    def test_rng_in_mesh_subsystem_fails(self):
        # The sensor fan-out must draw from dsp::Rng::for_stream, never from
        # a std engine — same rule as everywhere else, zero mesh waivers.
        self.assert_rules("std::mt19937 per_sensor(sensor_id);\n", ["rng"],
                          rel="src/mesh/sensor_field.cpp")

    def test_rng_waiver_suppresses(self):
        self.assert_rules(
            "std::mt19937 legacy;  // det-lint: allow(rng)\n", [])

    def test_rng_unified_ctc_lint_waiver_suppresses(self):
        # The unified spelling works everywhere; det-lint above is the
        # deprecated alias (docs/STATIC_ANALYSIS.md migration note).
        self.assert_rules(
            "std::mt19937 legacy;  // ctc-lint: allow(rng)\n", [])

    # -- clock --------------------------------------------------------------

    def test_clock_steady_clock_fails(self):
        self.assert_rules(
            "auto t0 = std::chrono::steady_clock::now();\n", ["clock"])

    def test_clock_system_clock_fails(self):
        self.assert_rules(
            "auto wall = std::chrono::system_clock::now();\n", ["clock"])

    def test_clock_telemetry_layer_passes(self):
        self.assert_rules(
            "start_ = std::chrono::steady_clock::now();\n", [],
            rel="src/sim/telemetry.h")

    def test_clock_perf_bench_allowlisted(self):
        self.assert_rules(
            "const auto start = std::chrono::steady_clock::now();\n", [],
            rel="bench/perf_engine.cpp")

    def test_clock_in_mesh_subsystem_fails(self):
        # src/mesh/ gets no special treatment: a clock read in the fusion or
        # localization code is a determinism bug, not a measurement.
        self.assert_rules(
            "auto t0 = std::chrono::steady_clock::now();\n", ["clock"],
            rel="src/mesh/sensor_field.cpp")

    def test_clock_perf_mesh_bench_allowlisted(self):
        self.assert_rules(
            "const auto start = std::chrono::steady_clock::now();\n", [],
            rel="bench/perf_mesh.cpp")

    def test_clock_duration_types_pass(self):
        # Durations and chrono arithmetic are fine; only clock *reads* leak
        # nondeterminism.
        self.assert_rules(
            "std::chrono::nanoseconds budget{5};\n"
            "using ms = std::chrono::milliseconds;\n", [])

    # -- unordered-iter -----------------------------------------------------

    REPORTING_PREAMBLE = (
        '#include <unordered_map>\n'
        'static const char* kOut = "report.json";\n')

    def test_unordered_range_for_in_report_writer_fails(self):
        self.assert_rules(
            self.REPORTING_PREAMBLE +
            "std::unordered_map<int, int> cells;\n"
            "void dump() { for (const auto& kv : cells) { use(kv); } }\n",
            ["unordered-iter"])

    def test_unordered_begin_in_report_writer_fails(self):
        self.assert_rules(
            self.REPORTING_PREAMBLE +
            "std::unordered_set<int> seen;\n"
            "auto it = seen.begin();\n",
            ["unordered-iter"])

    def test_unordered_membership_only_passes(self):
        self.assert_rules(
            self.REPORTING_PREAMBLE +
            "std::unordered_set<int> seen;\n"
            "bool dup = seen.count(3) > 0;\n"
            "void mark(int i) { seen.insert(i); }\n", [])

    def test_unordered_iteration_outside_report_writer_passes(self):
        # No report markers: hash-order iteration is the caller's business.
        self.assert_rules(
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> lut;\n"
            "void warm() { for (auto& kv : lut) { touch(kv); } }\n", [])

    def test_ordered_map_iteration_in_report_writer_passes(self):
        self.assert_rules(
            '#include <map>\nstatic const char* kOut = "cells.csv";\n'
            "std::map<int, int> rows;\n"
            "void dump() { for (const auto& kv : rows) { emit(kv); } }\n", [])

    # -- intrinsics ---------------------------------------------------------

    def test_intrinsics_include_fails(self):
        self.assert_rules("#include <immintrin.h>\n", ["intrinsics"])

    def test_intrinsics_vector_type_fails(self):
        self.assert_rules("__m256d acc = _mm256_setzero_pd();\n",
                          ["intrinsics"])

    def test_intrinsics_sse_call_fails(self):
        self.assert_rules("int bits = _mm_popcnt_u32(word);\n",
                          ["intrinsics"])

    def test_intrinsics_kernel_layer_passes(self):
        self.assert_rules(
            "#include <immintrin.h>\n"
            "__m256d v = _mm256_loadu_pd(p);\n", [],
            rel="src/dsp/kernels/kernels_avx2.cpp")

    def test_intrinsics_comment_mention_passes(self):
        self.assert_rules("// the AVX2 path uses _mm256_fmadd_pd()\n", [])

    def test_intrinsics_builtin_popcount_passes(self):
        # Compiler builtins are portable across the dispatch levels; only
        # vendor vector intrinsics are fenced into the kernel layer.
        self.assert_rules("int bits = __builtin_popcount(word);\n", [])

    def test_intrinsics_waiver_suppresses(self):
        self.assert_rules(
            "#include <immintrin.h>  // det-lint: allow(intrinsics)\n", [])

    # -- telem-mix ----------------------------------------------------------

    def test_record_timer_outside_telemetry_fails(self):
        self.assert_rules(
            "ctc::sim::telemetry::record_timer(id, 125);\n", ["telem-mix"])

    def test_scoped_timer_outside_telemetry_fails(self):
        self.assert_rules(
            "ctc::sim::telemetry::ScopedTimer t(id + 1);\n", ["telem-mix"])

    def test_clock_value_into_counter_macro_fails(self):
        violations = self.lint_source(
            'CTC_TELEM_COUNT("rx", "decode_ns", elapsed_ns);\n')
        self.assertEqual({v.rule for v in violations}, {"telem-mix"})

    def test_chrono_value_into_gauge_macro_fails(self):
        source = ('CTC_TELEM_GAUGE("rx", "lag",\n'
                  '    std::chrono::steady_clock::now()'
                  '.time_since_epoch().count());\n')
        rules = {v.rule for v in self.lint_source(source)}
        self.assertIn("telem-mix", rules)

    def test_plain_counter_macro_passes(self):
        self.assert_rules(
            'CTC_TELEM_COUNT("rx", "frames", 1);\n'
            'CTC_TELEM_HISTO("rx", "hamming", distance);\n'
            'CTC_TELEM_TIMER("rx", "decode");\n', [])

    def test_telemetry_layer_machinery_allowlisted(self):
        self.assert_rules("record_timer(id_, ns); Kind::timer;\n", [],
                          rel="src/sim/telemetry.cpp")


class LintCliTest(unittest.TestCase):
    """End-to-end: the CLI exit codes and the real tree."""

    def run_lint(self, *args):
        return subprocess.run(
            [sys.executable, str(LINT), *args],
            capture_output=True, text=True)

    def test_repo_tree_is_clean(self):
        result = self.run_lint("--root", str(REPO_ROOT))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_seeded_violation_fails_cli(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = Path(tmp) / "bad.cpp"
            bad.write_text("std::mt19937 gen;\n")
            result = self.run_lint("--root", str(REPO_ROOT), str(bad))
            self.assertEqual(result.returncode, 1,
                             result.stdout + result.stderr)
            self.assertIn("[rng]", result.stdout)

    def test_list_rules(self):
        result = self.run_lint("--list-rules")
        self.assertEqual(result.returncode, 0)
        self.assertIn("allowlist [clock]:", result.stdout)


if __name__ == "__main__":
    unittest.main()
