// ctc_campaign — run declarative experiment campaigns (see docs/CAMPAIGNS.md).
//
//   ctc_campaign validate <spec.json>
//   ctc_campaign plan     <spec.json> [--shards=N]
//   ctc_campaign run      <spec.json> [--out=DIR] [--threads=N]
//                         [--shards=N] [--shard=K] [--max-units=M]
//                         [--seed=N] [--telemetry] [--quiet]
//
// `run` resumes automatically from DIR/manifest.json. Exit codes: 0 on a
// complete campaign, 2 on usage/spec errors, 3 when units remain (a pinned
// shard, --max-units, or a mid-campaign kill — rerun to resume). When the
// campaign completes, the LAST stdout line is the merged report JSON, so
// `ctc_campaign run spec.json | tail -n1` captures the same line the ported
// bench binary prints with --json.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "campaign/executor.h"
#include "campaign/manifest.h"
#include "campaign/plan.h"
#include "campaign/spec.h"
#include "sim/table.h"

namespace {

using namespace ctc;

void print_usage(std::FILE* stream) {
  std::fputs(
      "usage: ctc_campaign <command> <spec.json> [flags]\n"
      "commands:\n"
      "  validate   parse + validate the spec, print a summary\n"
      "  plan       print the expanded work-unit table\n"
      "  run        execute (or resume) the campaign\n"
      "flags (run):\n"
      "  --out=DIR      artifact/manifest directory (default\n"
      "                 campaign_runs/<name>)\n"
      "  --threads=N    engine worker threads (default: CTC_THREADS, then\n"
      "                 hardware)\n"
      "  --shards=N     total shard count (partition modulus, default 1)\n"
      "  --shard=K      run only units with index %% N == K\n"
      "  --max-units=M  stop after M units this invocation (checkpointed;\n"
      "                 rerun to resume)\n"
      "  --seed=N       override the spec seed\n"
      "  --telemetry    collect sim::telemetry, write telemetry.json\n"
      "  --quiet        suppress per-unit progress lines\n"
      "flags (plan): --shards=N annotates shard membership\n",
      stream);
}

std::optional<std::string> read_file(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) return std::nullopt;
  std::string content;
  char buffer[4096];
  std::size_t read;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  return content;
}

bool flag_value(int argc, char** argv, int& i, const char* name,
                const char** out) {
  const std::size_t len = std::strlen(name);
  const char* arg = argv[i];
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s expects a value\n", name);
      std::exit(2);
    }
    *out = argv[++i];
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "invalid value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

int cmd_validate(const campaign::CampaignSpec& spec) {
  const campaign::CampaignPlan plan = campaign::plan_campaign(spec);
  std::printf("ok: campaign '%s' (experiment %s, seed %" PRIu64 ")\n",
              spec.name.c_str(), spec.experiment.c_str(), spec.seed);
  std::printf("    %zu cells x roles = %zu units over %zu stage(s)\n",
              spec.cells().size(), plan.units_total, plan.stages.size());
  std::printf("    fingerprint %s\n", campaign::spec_fingerprint(spec).c_str());
  return 0;
}

int cmd_plan(const campaign::CampaignSpec& spec, std::size_t shards) {
  const campaign::CampaignPlan plan = campaign::plan_campaign(spec);
  sim::Table table({"index", "stage", "id", "run", "trials", "shard"});
  for (const auto& stage : plan.stages) {
    for (const campaign::WorkUnit& unit : stage) {
      table.add_row({std::to_string(unit.index), std::to_string(unit.stage),
                     unit.id, std::to_string(unit.run_index),
                     std::to_string(unit.trials),
                     std::to_string(unit.index % shards)});
    }
  }
  table.print();
  std::printf("%zu units, fingerprint %s\n", plan.units_total,
              campaign::spec_fingerprint(spec).c_str());
  return 0;
}

int cmd_run(const campaign::CampaignSpec& spec,
            const campaign::ExecutorOptions& options) {
  const campaign::CampaignOutcome outcome = campaign::run_campaign(spec, options);
  if (!outcome.complete) return 3;
  // The merged report is the LAST line, mirroring the bench --json contract.
  std::printf("%s\n", outcome.report_json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    print_usage(argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                              std::strcmp(argv[1], "-h") == 0)
                    ? stdout
                    : stderr);
    return argc >= 2 ? 0 : 2;
  }
  const std::string command = argv[1];
  const char* spec_path = argv[2];

  campaign::ExecutorOptions options;
  std::optional<std::uint64_t> seed_override;
  std::size_t plan_shards = 1;
  for (int i = 3; i < argc; ++i) {
    const char* value = nullptr;
    if (flag_value(argc, argv, i, "--out", &value)) {
      options.out_dir = value;
    } else if (flag_value(argc, argv, i, "--threads", &value)) {
      options.threads = static_cast<std::size_t>(parse_u64(value, "--threads"));
    } else if (flag_value(argc, argv, i, "--shards", &value)) {
      options.shards = static_cast<std::size_t>(parse_u64(value, "--shards"));
      plan_shards = options.shards;
    } else if (flag_value(argc, argv, i, "--shard", &value)) {
      options.shard = static_cast<std::size_t>(parse_u64(value, "--shard"));
    } else if (flag_value(argc, argv, i, "--max-units", &value)) {
      options.max_units =
          static_cast<std::size_t>(parse_u64(value, "--max-units"));
    } else if (flag_value(argc, argv, i, "--seed", &value)) {
      seed_override = parse_u64(value, "--seed");
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      options.telemetry = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      options.quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      print_usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (plan_shards == 0) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }

  const auto text = read_file(spec_path);
  if (!text) {
    std::fprintf(stderr, "cannot read spec file %s\n", spec_path);
    return 2;
  }

  try {
    campaign::CampaignSpec spec = campaign::CampaignSpec::parse(*text);
    if (seed_override) spec.seed = *seed_override;
    if (options.out_dir.empty()) options.out_dir = "campaign_runs/" + spec.name;

    if (command == "validate") return cmd_validate(spec);
    if (command == "plan") return cmd_plan(spec, plan_shards);
    if (command == "run") return cmd_run(spec, options);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    print_usage(stderr);
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ctc_campaign: %s\n", error.what());
    return 2;
  }
}
