#!/usr/bin/env bash
# Byte-for-byte parity between the ported bench binaries and their campaign
# specs: `ctc_campaign run campaigns/<bench>.json` must emit the exact JSON
# line the bench prints with --json (the quick specs pin the same reduced
# trial counts as the bench's --trials override).
#
# usage: campaign_parity.sh <build_dir> <source_dir>
set -euo pipefail

build_dir=${1:?usage: campaign_parity.sh <build_dir> <source_dir>}
source_dir=${2:?usage: campaign_parity.sh <build_dir> <source_dir>}
cli="$build_dir/tools/ctc_campaign"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

check() {
  local bench=$1 trials=$2 spec=$3
  "$build_dir/bench/$bench" --trials="$trials" --json | tail -n1 \
    > "$work/$bench.bench.json"
  "$cli" run "$source_dir/campaigns/$spec" --out "$work/$bench.campaign" \
    --quiet | tail -n1 > "$work/$bench.campaign.json"
  if ! diff "$work/$bench.bench.json" "$work/$bench.campaign.json"; then
    echo "FAIL: $bench --json differs from campaigns/$spec report" >&2
    exit 1
  fi
  echo "ok: $bench == campaigns/$spec (byte-for-byte)"
}

check table2_attack_awgn 12 table2_attack_awgn_quick.json
check fig12_threshold 8 fig12_threshold_quick.json
echo "campaign parity: PASS"
