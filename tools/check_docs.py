#!/usr/bin/env python3
"""Docs consistency check: keep the documentation in lockstep with the tree.

Documentation rots silently — a renamed bench, a moved doc, a new subsystem
nobody wrote up. This check makes the common rot modes loud, as static
validation over README.md and docs/*.md:

  link       Every intra-repo markdown link ([text](path), path not a URL)
             must resolve to an existing file or directory, relative to the
             linking document. Pure #anchor links and external URLs are
             skipped.

  json       Every ```json fence must strictly json.loads(). Annotated
             examples belong in ```jsonc fences, which are validated after
             stripping //-comments — so schema examples stay readable AND
             parseable.

  shell      Every ```sh / ```bash fence must survive a static dry-run:
             the block must parse (`bash -n`) and the head of every simple
             command must come from the command allowlist (or be a
             $variable / repo-relative path). Transcript blocks — where
             command lines start with "$ " — validate only the command
             lines; output lines are ignored. A block preceded by
             <!-- check-docs: skip --> is exempt.

  coverage   Every src/<subsystem>/ directory must be mentioned in at
             least one scanned document ("<subsystem>/" or
             "src/<subsystem>") — a new subsystem cannot land undocumented.

Usage:
  check_docs.py [--root DIR]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import shlex
import subprocess
import sys
from pathlib import Path

DOC_GLOBS = ("README.md", "docs/*.md")

# Heads a documented shell command may start with. Extend with a reason in
# the adjacent comment; repo-relative paths (contain "/", not absolute) and
# $variables are always allowed.
ALLOWED_COMMANDS = {
    # build + test drivers the docs teach
    "cmake", "ctest", "ninja", "make",
    # repo tooling is always invoked through python3
    "python3",
    # portable shell used in transcripts and loops
    "cd", "cp", "mv", "rm", "mkdir", "echo", "cat", "head", "tail",
    "diff", "cmp", "grep", "wc", "ls", "export", "set",
    # version control shown in contribution docs
    "git",
}
SHELL_KEYWORDS = {
    "if", "then", "else", "elif", "fi", "for", "while", "until", "do",
    "done", "case", "esac", "in", "function", "time", "!", "{", "}",
}
OPERATOR_TOKENS = {"|", "||", "&&", ";", ";;", "&", "(", ")"}
REDIRECT_RE = re.compile(r"^\d*(?:>>?|<<?<?)(?:&\d*)?$")

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^\s*```\s*([A-Za-z0-9_+-]*)\s*$")
SKIP_MARKER = "<!-- check-docs: skip -->"


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_jsonc_comments(text: str) -> str:
    """Removes //-comments from a jsonc block, preserving string contents."""
    out = []
    in_string = False
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if in_string:
            out.append(c)
            if c == "\\" and i + 1 < n:
                out.append(text[i + 1])
                i += 2
                continue
            if c == '"':
                in_string = False
        else:
            if c == '"':
                in_string = True
                out.append(c)
            elif c == "/" and i + 1 < n and text[i + 1] == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            else:
                out.append(c)
        i += 1
    return "".join(out)


def iter_fences(lines: list):
    """Yields (language, start_line_1idx, [block lines], skipped) per fence."""
    i = 0
    pending_skip = False
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == SKIP_MARKER:
            pending_skip = True
            i += 1
            continue
        match = FENCE_RE.match(lines[i])
        if not match:
            if stripped:
                pending_skip = False
            i += 1
            continue
        language = match.group(1).lower()
        start = i + 1
        block = []
        i += 1
        while i < len(lines) and not lines[i].strip().startswith("```"):
            block.append(lines[i])
            i += 1
        i += 1  # closing fence
        yield language, start, block, pending_skip
        pending_skip = False


def transcript_commands(block: list):
    """Extracts (line_offset, command) pairs. In transcript blocks (any line
    starting with '$ ') only prompt lines are commands; otherwise every
    non-comment line is. Backslash continuations join onto the command."""
    is_transcript = any(line.lstrip().startswith("$ ") for line in block)
    commands = []
    i = 0
    while i < len(block):
        line = block[i]
        text = line.strip()
        start = i
        if is_transcript:
            if not text.startswith("$ "):
                i += 1
                continue
            text = text[2:]
        if not text or text.startswith("#"):
            i += 1
            continue
        while text.endswith("\\") and i + 1 < len(block):
            i += 1
            text = text[:-1] + " " + block[i].strip()
        commands.append((start, text))
        i += 1
    return commands


def command_heads(command: str) -> list:
    """Returns the head token of every simple command in `command`.
    Raises ValueError on unbalanced quoting."""
    lex = shlex.shlex(command, posix=True, punctuation_chars=True)
    lex.whitespace_split = True
    tokens = list(lex)
    heads = []
    expect_head = True
    skip_next = False
    in_loop_header = False  # between `for`/`case` and its `do`/`in` word list
    for token in tokens:
        if skip_next:
            skip_next = False
            continue
        if in_loop_header:
            if token == "do":
                in_loop_header = False
                expect_head = True
            continue
        if token in OPERATOR_TOKENS:
            expect_head = True
            continue
        if REDIRECT_RE.match(token):
            skip_next = True
            continue
        if not expect_head:
            continue
        if token in ("for", "case"):
            in_loop_header = True
            continue
        if token in SHELL_KEYWORDS:
            continue
        if "=" in token and re.match(r"^[A-Za-z_][A-Za-z0-9_]*=", token):
            continue  # FOO=bar prefix assignment
        heads.append(token)
        expect_head = False
    return heads


def head_allowed(head: str) -> bool:
    if head in ALLOWED_COMMANDS:
        return True
    if head.startswith("$"):
        return True  # shell variable — expansion target unknowable statically
    if "/" in head and not head.startswith("/"):
        return True  # repo-relative path (./build/bench/..., tools/x.sh)
    return False


def bash_parses(script: str):
    """Returns (ok, message) from `bash -n`. Skips quietly if bash is
    missing (the allowlist walk still runs)."""
    try:
        proc = subprocess.run(
            ["bash", "-n"], input=script, capture_output=True, text=True,
            timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return True, ""
    if proc.returncode != 0:
        return False, proc.stderr.strip().splitlines()[-1] if proc.stderr else "syntax error"
    return True, ""


def check_links(rel: str, path: Path, root: Path, lines: list,
                findings: list) -> None:
    in_fence = False
    for line_no, line in enumerate(lines, 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            if target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (path.parent / target_path).resolve()
            try:
                resolved.relative_to(root)
            except ValueError:
                findings.append(Finding(
                    rel, line_no, "link",
                    f"link target escapes the repo: {target}"))
                continue
            if not resolved.exists():
                findings.append(Finding(
                    rel, line_no, "link",
                    f"broken link: {target} (resolved {resolved.relative_to(root)})"))


def check_fences(rel: str, lines: list, findings: list) -> None:
    for language, start, block, skipped in iter_fences(lines):
        if skipped:
            continue
        text = "\n".join(block)
        if language in ("json", "jsonc"):
            payload = strip_jsonc_comments(text) if language == "jsonc" else text
            try:
                json.loads(payload)
            except json.JSONDecodeError as error:
                findings.append(Finding(
                    rel, start + error.lineno, "json",
                    f"fenced {language} does not parse: {error.msg}"))
        elif language in ("sh", "bash", "shell"):
            commands = transcript_commands(block)
            script = "\n".join(command for _, command in commands)
            ok, message = bash_parses(script)
            if not ok:
                findings.append(Finding(
                    rel, start + 1, "shell",
                    f"fenced shell does not parse: {message}"))
                continue
            for offset, command in commands:
                try:
                    heads = command_heads(command)
                except ValueError as error:
                    findings.append(Finding(
                        rel, start + offset + 1, "shell",
                        f"unparseable command: {error}"))
                    continue
                for head in heads:
                    if not head_allowed(head):
                        findings.append(Finding(
                            rel, start + offset + 1, "shell",
                            f"command '{head}' is not in the docs allowlist "
                            "(tools/check_docs.py ALLOWED_COMMANDS)"))


def check_coverage(root: Path, corpus: str, findings: list) -> None:
    src = root / "src"
    if not src.is_dir():
        return
    for sub in sorted(src.iterdir()):
        if not sub.is_dir():
            continue
        if not any(sub.glob("*")):
            continue
        name = sub.name
        if re.search(rf"\b{re.escape(name)}/|src/{re.escape(name)}\b", corpus):
            continue
        findings.append(Finding(
            "docs/", 0, "coverage",
            f"src/{name}/ is never mentioned in README.md or docs/*.md — "
            "document the subsystem (docs/ARCHITECTURE.md at minimum)"))


def collect_docs(root: Path) -> list:
    docs = []
    for pattern in DOC_GLOBS:
        docs.extend(sorted(root.glob(pattern)))
    return [d for d in docs if d.is_file()]


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repo root (default: cwd)")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    docs = collect_docs(root)
    if not docs:
        print(f"check_docs: no documents found under {root}", file=sys.stderr)
        return 2

    findings = []
    corpus_parts = []
    for path in docs:
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        corpus_parts.append(text)
        lines = text.splitlines()
        check_links(rel, path, root, lines, findings)
        check_fences(rel, lines, findings)
    check_coverage(root, "\n".join(corpus_parts), findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"\ncheck_docs: {len(findings)} finding(s) in {len(docs)} "
              "document(s)", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(docs)} documents clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
