#!/usr/bin/env python3
"""ctc_lint: architecture + contract conformance lint for the ctc tree.

Two analyzer families, built on the tools/lint/ framework:

  layering    layer-dep / layer-cycle / layer-unmapped — the
              docs/ARCHITECTURE.md dependency table (machine-readable in
              tools/lint/layers.json) enforced over every #include in
              src/ bench/ tools/ examples/ tests/.

  registries  kernel-registry / schema-docs / telemetry-registry /
              stream-ids — cross-checks between the code's cross-cutting
              contracts (dsp::kernels dispatch table, emitted *_schema
              JSON, CTC_TELEM_* metric families, Rng::for_stream id
              namespaces) and the docs that promise them.

Usage:
    tools/ctc_lint.py [--root DIR] [--build-dir DIR] [--report FILE]
                      [--list-rules] [files...]

With no files, scans the whole tree. Explicit files restrict the
per-file rules (layer-dep, telemetry-registry...) to those files; the
whole-tree registries still load the full tree so cross-checks stay
sound. Exit 0 = clean, 1 = findings, 2 = usage/spec error.

Waive a finding with `// ctc-lint: allow(<rule>)` on the flagged line
(see docs/STATIC_ANALYSIS.md for the waiver policy).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from lint import framework, layering, registries  # noqa: E402

RULES = {
    "layer-dep": "include crosses layers not declared in layers.json",
    "layer-cycle": "cyclic includes, or a cyclic declared layer graph",
    "layer-unmapped": "src/ file belongs to no declared layer",
    "kernel-registry": "KernelTable entry missing impl/test/class docs",
    "schema-docs": "emitted *_schema version or field not documented",
    "telemetry-registry": "CTC_TELEM_* family missing from TELEMETRY.md",
    "stream-ids": "Rng::for_stream site unregistered or namespace collision",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="ctc_lint.py",
        description="architecture + contract conformance lint")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--build-dir", default=None,
                        help="build tree holding compile_commands.json "
                             "(default: first build*/ under root)")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="also write the findings report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("files", nargs="*",
                        help="restrict per-file rules to these files")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, blurb in RULES.items():
            print(f"{rule:20} {blurb}")
        return 0

    root = (Path(args.root) if args.root
            else Path(__file__).resolve().parent.parent).resolve()
    if not (root / "src").is_dir():
        print(f"ctc_lint.py: no src/ under root {root}", file=sys.stderr)
        return 2

    try:
        spec = layering.load_spec()
    except (OSError, ValueError) as error:
        print(f"ctc_lint.py: cannot load layer spec: {error}",
              file=sys.stderr)
        return 2

    tree = framework.load_tree(root)
    include_dirs = framework.include_dirs_from_compile_commands(
        root, args.build_dir)

    findings = []
    findings += layering.run(tree, root, include_dirs, spec)
    findings += registries.run(tree, root)

    if args.files:
        keep = set()
        for name in args.files:
            path = Path(name)
            if not path.is_absolute():
                path = Path.cwd() / path
            try:
                keep.add(path.resolve().relative_to(root).as_posix())
            except ValueError:
                print(f"ctc_lint.py: {name} is outside root {root}",
                      file=sys.stderr)
                return 2
        findings = [finding for finding in findings if finding.path in keep]

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    report = framework.render_report(findings, len(tree), "ctc_lint")
    sys.stdout.write(report)
    if args.report:
        Path(args.report).write_text(report, encoding="utf-8")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
